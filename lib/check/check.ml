open Mj_relation
open Multijoin
module Hypergraph = Mj_hypergraph.Hypergraph
module Jointree = Mj_hypergraph.Jointree
module Obs = Mj_obs.Obs
module Json = Mj_obs.Json
module Engine = Mj_engine.Engine
module Planner = Mj_engine.Planner
module Physical = Mj_engine.Physical
module Pool = Mj_pool.Pool
module Failpoint = Mj_failpoint.Failpoint
module Serve = Mj_serve.Serve
module Protocol = Mj_serve.Protocol

type failure = { check : string; detail : string }
type outcome = Pass | Fail of failure

exception Failed of failure

let fail check fmt =
  Format.kasprintf (fun detail -> raise (Failed { check; detail })) fmt

let pp_failure fmt f = Format.fprintf fmt "%s: %s" f.check f.detail
let guard f = try f () ; Pass with Failed x -> Fail x

(* ------------------------------------------------------------------ *)
(* Differential: the engine matrix against the algebraic reference.   *)
(* ------------------------------------------------------------------ *)

let planes = [ Engine.Seed; Engine.Frame ]
let domain_counts = [ 1; 4 ]

let policies =
  [
    Planner.Hash_all;
    Planner.Cost_based;
    Planner.Forced Physical.Nested_loop;
    Planner.Forced (Physical.Block_nested_loop 3);
    Planner.Forced Physical.Hash_join;
    Planner.Forced Physical.Sort_merge;
    Planner.Forced Physical.Index_nested_loop;
  ]

(* The structural fingerprint of a trace: every named span ("scan" and
   "join" by default; the yann leg adds "semijoin" and "topk") in DFS
   order with its scheme attribute.  Algorithm names and timings are
   allowed to differ across the matrix; the shape is not. *)
let skeleton ?(names = [ "scan"; "join" ]) obs =
  let scheme_of attrs =
    match List.assoc_opt "scheme" attrs with
    | Some (Json.Str s) -> s
    | _ -> "?"
  in
  let rec walk acc (sp : Obs.span_tree) =
    let acc =
      if List.mem sp.Obs.name names then
        (sp.Obs.name, scheme_of sp.Obs.attrs) :: acc
      else acc
    in
    List.fold_left walk acc sp.Obs.children
  in
  List.rev (List.fold_left walk [] (Obs.trace obs))

let step_log_equal a b =
  List.equal
    (fun (d1, c1) (d2, c2) -> Scheme.Set.equal d1 d2 && c1 = c2)
    a b

let pp_step_log fmt log =
  Format.fprintf fmt "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.fprintf fmt "; ")
       (fun fmt (d, c) -> Format.fprintf fmt "%a=%d" Scheme.Set.pp d c))
    log

let differential db s =
  guard @@ fun () ->
  let expected = Cost.eval db s in
  let tau = Cost.tau db s in
  let steps = Cost.step_costs db s in
  (* Join spans must agree cell-for-cell across the whole matrix; the
     full scan/join shape only across domain counts within one
     plane × policy cell — the index-nested-loop fast path reaches
     indexed base relations without executing (or tracing) the inner
     scan, so scan counts legitimately differ between policies. *)
  let reference_joins = ref None in
  let cell_skeletons = Hashtbl.create 16 in
  List.iter
    (fun plane ->
      (* The storage axis only exists on the frame plane: the seed plane
         has no frames, so one cell covers it. *)
      let storages =
        match plane with
        | Engine.Seed -> [ None ]
        | Engine.Frame -> List.map Option.some Frame.all_storages
      in
      List.iter
        (fun policy ->
          List.iter
            (fun storage ->
            List.iter
            (fun domains ->
              let storage_label =
                match storage with
                | None -> ""
                | Some st -> "/" ^ Frame.storage_name st
              in
              let where =
                Printf.sprintf "%s%s/%s/%d-domain" (Engine.plane_name plane)
                  storage_label
                  (Planner.policy_name policy) domains
              in
              let obs = Obs.make () in
              let cfg =
                Engine.Config.make ~plane ~domains ~policy ~obs ?storage ()
              in
              let r, stats = Engine.run cfg db s in
              if not (Relation.equal r expected) then
                fail "differential:result"
                  "%s: %d rows, reference has %d (strategy %s)" where
                  (Relation.cardinality r)
                  (Relation.cardinality expected)
                  (Strategy.to_string s);
              if stats.Engine.tuples_generated <> tau then
                fail "differential:tau" "%s: reported τ=%d, Cost.tau=%d" where
                  stats.Engine.tuples_generated tau;
              if not (step_log_equal stats.Engine.per_step steps) then
                fail "differential:steps" "%s: per-step log %a ≠ %a" where
                  pp_step_log stats.Engine.per_step pp_step_log steps;
              let sk = skeleton obs in
              let joins = List.filter (fun (n, _) -> n = "join") sk in
              (match !reference_joins with
              | None -> reference_joins := Some (where, joins)
              | Some (ref_where, ref_joins) ->
                  if joins <> ref_joins then
                    fail "differential:spans"
                      "%s: %d join spans with a different shape than %s's %d"
                      where (List.length joins) ref_where
                      (List.length ref_joins));
              let cell =
                ( Engine.plane_name plane ^ storage_label,
                  Planner.policy_name policy )
              in
              match Hashtbl.find_opt cell_skeletons cell with
              | None -> Hashtbl.add cell_skeletons cell (where, sk)
              | Some (ref_where, ref_sk) ->
                  if sk <> ref_sk then
                    fail "differential:spans"
                      "%s: scan/join shape differs from %s within the same \
                       plane × policy × storage cell"
                      where ref_where)
            domain_counts)
            storages)
        policies)
    planes

(* The worst-case-optimal leg of the matrix.  The [Wcoj] policy is kept
   out of [policies] deliberately: on a cyclic strategy it rewrites the
   whole plan into one n-ary node, so its τ and span shapes legitimately
   differ from every binary cell — the main differential's
   "join spans agree cell-for-cell" invariant would be vacuously
   destroyed, not checked.  Instead the wcoj cells get their own
   expected τ/step log, derived from the lowered plan itself through the
   exact-cardinality cache, and the span-shape invariant is scoped to
   the wcoj cells (which must agree with each other across planes,
   storages and domain counts). *)
let wcoj_steps cache plan =
  let rec go acc = function
    | Physical.Scan _ -> acc
    | Physical.Join (_, l, r) ->
        let acc = go (go acc l) r in
        let d = Scheme.Set.union (Physical.schemes l) (Physical.schemes r) in
        (d, Cost.Cache.card cache d) :: acc
    | Physical.Generic_join (ss, _) ->
        let d = Scheme.Set.of_list ss in
        (d, Cost.Cache.card cache d) :: acc
    | Physical.Semijoin_program _ | Physical.Ranked_enumerate _ ->
        invalid_arg "wcoj_steps: yannakakis node in a wcoj plan"
  in
  List.rev (go [] plan)

let wcoj_differential db s =
  guard @@ fun () ->
  let expected = Cost.eval db s in
  let cache = Cost.Cache.create db in
  let plan = Planner.lower ~policy:Planner.Wcoj db s in
  let steps = wcoj_steps cache plan in
  let tau = List.fold_left (fun acc (_, c) -> acc + c) 0 steps in
  (* On a cyclic strategy the single n-ary step must price at the full
     result — the τ certificate that the generic join materializes no
     binary intermediate at all. *)
  (match plan with
  | Physical.Generic_join _ ->
      let result_card = Relation.cardinality expected in
      if tau <> result_card then
        fail "wcoj:tau_shape" "generic join τ=%d ≠ |R_D|=%d" tau result_card
  | _ -> ());
  (* Join spans must agree across the whole wcoj matrix; the full
     scan/join shape only within one plane × storage cell — the acyclic
     arm is the cost-based chooser, whose index-nested-loop fast path
     skips inner scans on the seed plane but not the frame plane. *)
  let reference_joins = ref None in
  let cell_skeletons = Hashtbl.create 8 in
  List.iter
    (fun plane ->
      let storages =
        match plane with
        | Engine.Seed -> [ None ]
        | Engine.Frame -> List.map Option.some Frame.all_storages
      in
      List.iter
        (fun storage ->
          List.iter
            (fun domains ->
              let cell =
                Engine.plane_name plane
                ^
                match storage with
                | None -> ""
                | Some st -> "/" ^ Frame.storage_name st
              in
              let where = Printf.sprintf "%s/wcoj/%d-domain" cell domains in
              let obs = Obs.make () in
              let cfg =
                Engine.Config.make ~plane ~domains ~policy:Planner.Wcoj ~obs
                  ?storage ()
              in
              let r, stats = Engine.run cfg db s in
              if not (Relation.equal r expected) then
                fail "wcoj:result" "%s: %d rows, reference has %d (strategy %s)"
                  where
                  (Relation.cardinality r)
                  (Relation.cardinality expected)
                  (Strategy.to_string s);
              if stats.Engine.tuples_generated <> tau then
                fail "wcoj:tau" "%s: reported τ=%d, plan prices %d" where
                  stats.Engine.tuples_generated tau;
              if not (step_log_equal stats.Engine.per_step steps) then
                fail "wcoj:steps" "%s: per-step log %a ≠ %a" where pp_step_log
                  stats.Engine.per_step pp_step_log steps;
              let sk = skeleton obs in
              let joins = List.filter (fun (n, _) -> n = "join") sk in
              (match !reference_joins with
              | None -> reference_joins := Some (where, joins)
              | Some (ref_where, ref_joins) ->
                  if joins <> ref_joins then
                    fail "wcoj:spans"
                      "%s: %d join spans with a different shape than %s's %d"
                      where (List.length joins) ref_where
                      (List.length ref_joins));
              match Hashtbl.find_opt cell_skeletons cell with
              | None -> Hashtbl.add cell_skeletons cell (where, sk)
              | Some (ref_where, ref_sk) ->
                  if sk <> ref_sk then
                    fail "wcoj:spans"
                      "%s: scan/join shape differs from %s within the same \
                       plane × storage cell"
                      where ref_where)
            domain_counts)
        storages)
    planes

(* The Yannakakis leg of the matrix.  Like the wcoj leg, the [yann]
   policy's τ and span shapes legitimately differ from every binary
   cell — semijoins generate no τ, and the join phase folds along the
   cost-chosen join tree — so its expected step log is derived from the
   lowered plan itself.  The derivation is the theorem the leg checks:
   after a full reduction (up then down sweep), every reduced relation
   is the projection of [R_D] onto its scheme, so the join phase's
   intermediate over any root-containing subtree prefix of
   [Jointree.join_order] is exactly [π_{prefix attrs}(R_D)] — the
   instance-optimality certificate (every intermediate ≤ |R_D|).
   Cyclic strategies fall through to the wcoj arm and are priced like
   that leg.  On acyclic plans the ranked enumerator is also checked:
   for several k, [Ranked_enumerate (rt, k)] must stream exactly the
   first k tuples of the sorted full output. *)
let yann_steps expected rt =
  match Jointree.join_order rt with
  | [] | [ _ ] -> []
  | first :: rest ->
      let _, _, steps =
        List.fold_left
          (fun (set, attrs, acc) s ->
            let set = Scheme.Set.add s set in
            let attrs = Attr.Set.union attrs s in
            let c = Relation.cardinality (Relation.project expected attrs) in
            (set, attrs, (set, c) :: acc))
          (Scheme.Set.singleton first, first, [])
          rest
      in
      List.rev steps

let yann_differential db s =
  guard @@ fun () ->
  let expected = Cost.eval db s in
  let plan = Planner.lower ~policy:Planner.Yannakakis db s in
  let steps =
    match plan with
    | Physical.Semijoin_program rt -> yann_steps expected rt
    | _ -> wcoj_steps (Cost.Cache.create db) plan
  in
  let tau = List.fold_left (fun acc (_, c) -> acc + c) 0 steps in
  let reference_joins = ref None in
  let cell_skeletons = Hashtbl.create 8 in
  let span_names = [ "scan"; "join"; "semijoin"; "topk" ] in
  List.iter
    (fun plane ->
      let storages =
        match plane with
        | Engine.Seed -> [ None ]
        | Engine.Frame -> List.map Option.some Frame.all_storages
      in
      List.iter
        (fun storage ->
          List.iter
            (fun domains ->
              let cell =
                Engine.plane_name plane
                ^
                match storage with
                | None -> ""
                | Some st -> "/" ^ Frame.storage_name st
              in
              let where = Printf.sprintf "%s/yann/%d-domain" cell domains in
              let obs = Obs.make () in
              let cfg =
                Engine.Config.make ~plane ~domains ~policy:Planner.Yannakakis
                  ~obs ?storage ()
              in
              let r, stats = Engine.run cfg db s in
              if not (Relation.equal r expected) then
                fail "yann:result" "%s: %d rows, reference has %d (strategy %s)"
                  where
                  (Relation.cardinality r)
                  (Relation.cardinality expected)
                  (Strategy.to_string s);
              if stats.Engine.tuples_generated <> tau then
                fail "yann:tau" "%s: reported τ=%d, plan prices %d" where
                  stats.Engine.tuples_generated tau;
              if not (step_log_equal stats.Engine.per_step steps) then
                fail "yann:steps" "%s: per-step log %a ≠ %a" where pp_step_log
                  stats.Engine.per_step pp_step_log steps;
              let sk = skeleton ~names:span_names obs in
              let joins = List.filter (fun (n, _) -> n = "join") sk in
              (match !reference_joins with
              | None -> reference_joins := Some (where, joins)
              | Some (ref_where, ref_joins) ->
                  if joins <> ref_joins then
                    fail "yann:spans"
                      "%s: %d join spans with a different shape than %s's %d"
                      where (List.length joins) ref_where
                      (List.length ref_joins));
              match Hashtbl.find_opt cell_skeletons cell with
              | None -> Hashtbl.add cell_skeletons cell (where, sk)
              | Some (ref_where, ref_sk) ->
                  if sk <> ref_sk then
                    fail "yann:spans"
                      "%s: scan/semijoin/join shape differs from %s within \
                       the same plane × storage cell"
                      where ref_where)
            domain_counts)
        storages)
    planes;
  (* Ranked enumeration: top-k must be the k-prefix of the sorted full
     output, on every plane and storage, with τ = the rows streamed. *)
  match plan with
  | Physical.Semijoin_program rt ->
      let full = Relation.tuples expected in
      let card = List.length full in
      let ks = List.sort_uniq compare [ 1; (card + 1) / 2; card; card + 3 ] in
      let prefix k =
        List.filteri (fun i _ -> i < k) full
      in
      List.iter
        (fun plane ->
          let storages =
            match plane with
            | Engine.Seed -> [ None ]
            | Engine.Frame -> List.map Option.some Frame.all_storages
          in
          List.iter
            (fun storage ->
              List.iter
                (fun k ->
                  let where =
                    Printf.sprintf "%s/topk k=%d" (Engine.plane_name plane) k
                  in
                  let cfg =
                    Engine.Config.make ~plane ~domains:1
                      ~policy:Planner.Yannakakis ?storage ()
                  in
                  let r, stats =
                    Engine.execute_plan cfg db
                      (Physical.Ranked_enumerate (rt, k))
                  in
                  let want = prefix k in
                  if
                    not
                      (List.equal Tuple.equal (Relation.tuples r) want)
                  then
                    fail "yann:topk" "%s: %d rows ≠ the sorted %d-prefix"
                      where (Relation.cardinality r) (List.length want);
                  if stats.Engine.tuples_generated <> List.length want then
                    fail "yann:topk_tau" "%s: τ=%d ≠ %d rows streamed" where
                      stats.Engine.tuples_generated (List.length want))
                ks)
            storages)
        planes
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Serve: the daemon's warm path against the cold engine.             *)
(* ------------------------------------------------------------------ *)

(* A second strategy over the same database whose per-step τ log
   differs from the case's — the probe that makes a cross-strategy
   plan-cache collision (the [serve.cache_stale_plan] bug) observable:
   a stale plan executes the wrong step sequence, and the response's
   τ log no longer matches the submitted strategy's cold run.  The two
   left-deep rebuilds below differ from each other in their first step
   whenever there are ≥ 3 leaves, so at most one of them can coincide
   with the case's log; with 2 leaves every strategy has the same
   one-step log and no probe exists. *)
let alt_strategy db s =
  match Strategy.leaves s with
  | first :: (_ :: _ :: _ as tl) as leaves ->
      let rotated = tl @ [ first ] in
      let steps0 = Cost.step_costs db s in
      List.find_opt
        (fun c -> not (step_log_equal (Cost.step_costs db c) steps0))
        [ Strategy.left_deep leaves; Strategy.left_deep rotated ]
  | _ -> None

let serve_steps_string steps = Json.to_string (Protocol.steps_json steps)

let serve_response_field name line =
  match Json.of_string_opt line with
  | None -> None
  | Some j -> Json.member name j

(* One serve instance per plane: submit the case's strategy twice
   (plan-cache miss then hit) plus the alternate-strategy probe, and
   require every response to match a cold [Engine.run] of the same
   request — rows, τ, result hash and the per-step τ log — with the τ
   logs of hit and miss identical.  A [timeout]/[overloaded]/[error]
   status is a failure here: the daemon under no injected fault must
   answer every query. *)
let serve_differential db s =
  guard @@ fun () ->
  let key = "check-case" in
  List.iter
    (fun plane ->
      let cfg =
        Engine.Config.make ~plane ~domains:1 ~policy:Planner.Hash_all
          ~obs:Obs.noop ()
      in
      let t = Serve.create ~timeout_ms:5_000 ~cfg () in
      let submit strat =
        Serve.submit_query t ~plane ~strategy:strat ~key
          ~db:(fun () -> db)
          ()
      in
      let check_response where strat line =
        let where = Printf.sprintf "%s/%s" (Engine.plane_name plane) where in
        (match Protocol.status_of_response line with
        | "ok" -> ()
        | status ->
            fail "serve:status" "%s: status %s (%s)" where status line);
        let cold_cfg =
          Engine.Config.make ~plane ~domains:1 ~policy:Planner.Hash_all
            ~obs:Obs.noop ()
        in
        let r, stats = Engine.run cold_cfg db strat in
        let expect name v =
          match serve_response_field name line with
          | Some got when got = v -> ()
          | got ->
              fail "serve:response"
                "%s: field %s = %s, cold run has %s" where name
                (match got with Some g -> Json.to_string g | None -> "absent")
                (Json.to_string v)
        in
        expect "rows" (Json.int stats.Engine.result_rows);
        expect "tau" (Json.int stats.Engine.tuples_generated);
        expect "hash"
          (Json.str (Protocol.hash_hex (Protocol.result_hash r)));
        match serve_response_field "steps" line with
        | Some steps
          when Json.to_string steps
               = serve_steps_string stats.Engine.per_step ->
            ()
        | Some steps ->
            fail "serve:steps" "%s: served τ log %s ≠ cold %s" where
              (Json.to_string steps)
              (serve_steps_string stats.Engine.per_step)
        | None -> fail "serve:steps" "%s: response carries no τ log" where
      in
      let miss = submit s in
      check_response "miss" s miss;
      let hit = submit s in
      check_response "hit" s hit;
      if
        serve_response_field "steps" miss <> serve_response_field "steps" hit
        || serve_response_field "tau" miss <> serve_response_field "tau" hit
      then
        fail "serve:determinism"
          "%s: plan-cache hit and miss disagree on τ log"
          (Engine.plane_name plane);
      match alt_strategy db s with
      | Some alt -> check_response "alt" alt (submit alt)
      | None -> ())
    planes

(* ------------------------------------------------------------------ *)
(* Metamorphic: rewrites that provably preserve result or cost.       *)
(* ------------------------------------------------------------------ *)

let rec mirror = function
  | Strategy.Leaf s -> Strategy.leaf s
  | Strategy.Join n -> Strategy.join (mirror n.right) (mirror n.left)

(* A pair of disjoint non-root subtrees, if any — candidates for
   [Transform.exchange].  The two children of any join qualify, so
   every strategy with at least one step has a pair. *)
let exchange_pair s =
  let root = Strategy.schemes s in
  let subs =
    List.filter
      (fun d -> not (Scheme.Set.equal d root))
      (Strategy.subtree_schemes s)
  in
  let rec first_pair = function
    | [] -> None
    | a :: rest -> (
        match
          List.find_opt (fun b -> Hypergraph.disjoint a b) rest
        with
        | Some b -> Some (a, b)
        | None -> first_pair rest)
  in
  first_pair subs

let metamorphic db s =
  guard @@ fun () ->
  let expected = Cost.eval db s in
  let tau = Cost.tau db s in
  (* Commuting every step is τ-invariant: each step still materializes
     the same intermediate scheme set. *)
  let m = mirror s in
  let tau_m = Cost.tau db m in
  if tau_m <> tau then
    fail "metamorphic:mirror_tau" "τ(%s)=%d but τ(mirror)=%d"
      (Strategy.to_string s) tau tau_m;
  if not (Relation.equal (Cost.eval db m) expected) then
    fail "metamorphic:mirror_result" "mirror of %s changed the result"
      (Strategy.to_string s);
  (* Exchanging disjoint substrategies preserves validity and the
     result (the leaf multiset is unchanged). *)
  (match exchange_pair s with
  | None -> ()
  | Some (a, b) ->
      let x = Transform.exchange s a b in
      (match Strategy.check x with
      | Ok () -> ()
      | Error msg ->
          fail "metamorphic:exchange_valid"
            "exchange %a ↔ %a produced an invalid strategy: %s"
            Scheme.Set.pp a Scheme.Set.pp b msg);
      if not (Scheme.Set.equal (Strategy.schemes x) (Strategy.schemes s))
      then
        fail "metamorphic:exchange_schemes"
          "exchange %a ↔ %a changed the scheme set" Scheme.Set.pp a
          Scheme.Set.pp b;
      if not (Relation.equal (Cost.eval db x) expected) then
        fail "metamorphic:exchange_result"
          "exchange %a ↔ %a changed the result of %s" Scheme.Set.pp a
          Scheme.Set.pp b (Strategy.to_string s));
  (* Any strategy over the same leaves computes the same relation. *)
  let ld = Strategy.left_deep (Strategy.leaves s) in
  if not (Relation.equal (Cost.eval db ld) expected) then
    fail "metamorphic:left_deep" "left-deep rebuild of %s changed the result"
      (Strategy.to_string s);
  (* Output-size sanity: each step is bounded by the product of its
     inputs, and the τ log must agree with the cache oracle. *)
  let cache = Cost.Cache.create db in
  List.iter
    (fun (d1, d2) ->
      let c1 = Cost.Cache.card cache d1
      and c2 = Cost.Cache.card cache d2 in
      let c12 = Cost.Cache.card cache (Scheme.Set.union d1 d2) in
      if c12 > c1 * c2 then
        fail "metamorphic:step_bound" "|%a ⋈ %a| = %d > %d × %d"
          Scheme.Set.pp d1 Scheme.Set.pp d2 c12 c1 c2)
    (Strategy.steps s);
  let base_product =
    List.fold_left
      (fun acc r -> acc * Relation.cardinality r)
      1 (Database.relations db)
  in
  let result_card = Relation.cardinality expected in
  if result_card > base_product then
    fail "metamorphic:result_bound" "|R_D| = %d > Π|Rᵢ| = %d" result_card
      base_product;
  List.iter
    (fun (d, c) ->
      let oracle = Cost.Cache.card cache d in
      if c <> oracle then
        fail "metamorphic:step_oracle"
          "step_costs says |%a| = %d, cache oracle says %d" Scheme.Set.pp d
          c oracle)
    (Cost.step_costs db s)

(* ------------------------------------------------------------------ *)
(* Theorems: the paper's postconditions against the exhaustive DP.    *)
(* ------------------------------------------------------------------ *)

let theorems db =
  guard @@ fun () ->
  let rep = Theorems.verify db in
  let refuted name = function
    | Theorems.Refuted -> fail "theorems:refuted" "%s came back Refuted" name
    | Theorems.Holds | Theorems.Vacuous _ -> ()
  in
  refuted "theorem 1" rep.Theorems.theorem1;
  refuted "theorem 2" rep.Theorems.theorem2;
  refuted "theorem 3" rep.Theorems.theorem3;
  (* Subspace minima must nest: a smaller search space can only be
     more expensive. *)
  if rep.Theorems.min_all > rep.Theorems.min_linear then
    fail "theorems:nesting" "min_all=%d > min_linear=%d" rep.Theorems.min_all
      rep.Theorems.min_linear;
  if rep.Theorems.min_all > rep.Theorems.min_cp_free then
    fail "theorems:nesting" "min_all=%d > min_cp_free=%d"
      rep.Theorems.min_all rep.Theorems.min_cp_free;
  (match rep.Theorems.min_linear_cp_free with
  | Some v when v < rep.Theorems.min_linear || v < rep.Theorems.min_cp_free
    ->
      fail "theorems:nesting"
        "min_linear_cp_free=%d below min_linear=%d or min_cp_free=%d" v
        rep.Theorems.min_linear rep.Theorems.min_cp_free
  | _ -> ());
  (* DP ground truth, two independent ways: the DP's optimum strategy
     must materialize to exactly the reported cost, and brute-force
     enumeration of the whole space must find the same minimum. *)
  (match Optimal.optimum db with
  | None -> fail "theorems:dp" "Optimal.optimum returned None"
  | Some r ->
      if r.Optimal.cost <> rep.Theorems.min_all then
        fail "theorems:dp" "DP cost %d ≠ report min_all %d" r.Optimal.cost
          rep.Theorems.min_all;
      let materialized = Cost.tau db r.Optimal.strategy in
      if materialized <> r.Optimal.cost then
        fail "theorems:dp"
          "DP claims τ=%d for %s but materialization gives %d" r.Optimal.cost
          (Strategy.to_string r.Optimal.strategy)
          materialized);
  let cache = Cost.Cache.create db in
  let oracle = Cost.Cache.card cache in
  let brute =
    Enumerate.fold_strategies Enumerate.All (Database.schemes db)
      ~init:max_int ~f:(fun acc s -> min acc (Cost.tau_oracle oracle s))
  in
  if brute <> rep.Theorems.min_all then
    fail "theorems:brute_force"
      "exhaustive enumeration min τ=%d, DP min_all=%d" brute
      rep.Theorems.min_all;
  if not (Theorems.lemma5_consistent db) then
    fail "theorems:lemma5" "monotone refinement inconsistent with Lemma 5"

(* ------------------------------------------------------------------ *)
(* Faults: graceful degradation or loud failure, never corruption.    *)
(* ------------------------------------------------------------------ *)

let with_failpoints_saved f =
  let saved = Failpoint.spec () in
  Fun.protect
    ~finally:(fun () ->
      Failpoint.reset ();
      match Failpoint.set_spec saved with Ok () -> () | Error _ -> ())
    f

let faults db s =
  guard @@ fun () ->
  with_failpoints_saved @@ fun () ->
  let tau = Cost.tau db s in
  (* A killed worker domain must not change pool results: survivors
     plus the serial fallback still complete every task. *)
  Failpoint.reset ();
  let tasks = Array.init 8 (fun i () -> (i * 31) + Cost.tau db s) in
  let expected_tasks = Array.map (fun t -> t ()) tasks in
  Failpoint.enable Failpoint.Pool_worker_kill;
  let got = Pool.run ~domains:4 tasks in
  Failpoint.disable Failpoint.Pool_worker_kill;
  if got <> expected_tasks then
    fail "faults:pool_kill" "pool results changed under worker kill";
  if
    Domain.recommended_domain_count () > 1
    && Failpoint.hits Failpoint.Pool_worker_kill = 0
  then
    fail "faults:pool_kill"
      "worker-kill failpoint never fired on a multicore host";
  (* A poisoned τ-cache must detect its corrupt entries and bypass
     them: every read stays correct and the bypass counter moves. *)
  Failpoint.reset ();
  let reference = Cost.Cache.create db in
  let keys = Strategy.subtree_schemes s in
  let clean = List.map (Cost.Cache.card reference) keys in
  Failpoint.enable Failpoint.Cache_poison;
  let poisoned = Cost.Cache.create db in
  let first_read = List.map (Cost.Cache.card poisoned) keys in
  let second_read = List.map (Cost.Cache.card poisoned) keys in
  Failpoint.disable Failpoint.Cache_poison;
  if first_read <> clean || second_read <> clean then
    fail "faults:cache_poison" "a poisoned cache returned a corrupt value";
  if Cost.Cache.bypasses poisoned = 0 then
    fail "faults:cache_poison"
      "integrity guard never engaged: %d poisoned stores, 0 bypasses"
      (Failpoint.hits Failpoint.Cache_poison);
  (* Oversized estimates may change the plan, never the answer. *)
  Failpoint.reset ();
  let run_cost_based () =
    let cfg =
      Engine.Config.make ~plane:Engine.Seed ~domains:1
        ~policy:Planner.Cost_based ()
    in
    Engine.run cfg db s
  in
  let baseline, _ = run_cost_based () in
  Failpoint.enable Failpoint.Estimate_oversize;
  let skewed, skewed_stats = run_cost_based () in
  Failpoint.disable Failpoint.Estimate_oversize;
  if Failpoint.hits Failpoint.Estimate_oversize = 0 then
    fail "faults:estimate_oversize" "cost-based lowering never consulted \
                                     the estimate oracle";
  if not (Relation.equal skewed baseline) then
    fail "faults:estimate_oversize" "oversized estimates changed the result";
  if skewed_stats.Engine.tuples_generated <> tau then
    fail "faults:estimate_oversize"
      "oversized estimates changed τ: %d ≠ %d"
      skewed_stats.Engine.tuples_generated tau;
  (* The planted frame-plane mutation must be visible in the τ log —
     this is the detector the self-test relies on.  R_D ≠ ∅ under the
     generators, but raw caller databases may produce τ = 0, where a
     lossy join has nothing to drop. *)
  Failpoint.reset ();
  if tau > 0 then
    List.iter
      (fun storage ->
        Failpoint.enable Failpoint.Frame_lossy_join;
        let cfg =
          Engine.Config.make ~plane:Engine.Frame ~domains:1
            ~policy:Planner.Hash_all ~storage ()
        in
        let _, st = Engine.run cfg db s in
        Failpoint.disable Failpoint.Frame_lossy_join;
        if st.Engine.tuples_generated = tau then
          fail "faults:lossy_join"
            "planted frame-plane mutation went undetected on %s storage (τ \
             log unchanged at %d)"
            (Frame.storage_name storage) tau)
      Frame.all_storages;
  (* Its acyclic-path twin: a lossy semijoin reducer must be visible in
     the yann cells — as a changed result or a changed τ log — whenever
     the strategy actually takes the semijoin-program path and the full
     join is non-empty (every non-empty semijoin output then loses its
     last row, and that row extends to at least one output tuple). *)
  Failpoint.reset ();
  let expected = Cost.eval db s in
  (match Planner.lower ~policy:Planner.Yannakakis db s with
  | Physical.Semijoin_program _ when not (Relation.is_empty expected) ->
      List.iter
        (fun storage ->
          Failpoint.enable Failpoint.Yann_lossy_semijoin;
          let cfg =
            Engine.Config.make ~plane:Engine.Frame ~domains:1
              ~policy:Planner.Yannakakis ~storage ()
          in
          let r, st = Engine.run cfg db s in
          Failpoint.disable Failpoint.Yann_lossy_semijoin;
          if Failpoint.hits Failpoint.Yann_lossy_semijoin = 0 then
            fail "faults:lossy_semijoin"
              "yann.lossy_semijoin never fired on a semijoin-program plan";
          if Relation.equal r expected then
            fail "faults:lossy_semijoin"
              "planted lossy semijoin went undetected on %s storage (result \
               unchanged at %d rows, τ=%d)"
              (Frame.storage_name storage)
              (Relation.cardinality expected)
              st.Engine.tuples_generated)
        Frame.all_storages
  | _ -> ());
  (* Serve: a stalled worker must degrade to a structured timeout
     error, never a crash or a wrong answer. *)
  Failpoint.reset ();
  let serve_cfg () =
    Engine.Config.make ~plane:Engine.Seed ~domains:1 ~policy:Planner.Hash_all
      ~obs:Obs.noop ()
  in
  Failpoint.enable Failpoint.Serve_worker_stall;
  let stall_t = Serve.create ~timeout_ms:1 ~cfg:(serve_cfg ()) () in
  let stalled =
    Serve.submit_query stall_t ~strategy:s ~key:"fault-stall"
      ~db:(fun () -> db)
      ()
  in
  Failpoint.disable Failpoint.Serve_worker_stall;
  if Failpoint.hits Failpoint.Serve_worker_stall = 0 then
    fail "faults:worker_stall" "serve.worker_stall never fired";
  if
    Protocol.status_of_response stalled <> "error"
    || serve_response_field "code" stalled <> Some (Json.Str "timeout")
  then
    fail "faults:worker_stall"
      "stalled worker did not answer with a timeout error: %s" stalled;
  (* Serve: the planted stale-plan cache collision must be visible in
     the response τ log — the alternate strategy comes back with the
     first strategy's step sequence.  Needs a probe strategy whose τ
     log differs (≥ 3 relations); smaller cases have nothing to
     collide. *)
  Failpoint.reset ();
  (match alt_strategy db s with
  | None -> ()
  | Some alt ->
      Failpoint.enable Failpoint.Serve_stale_plan;
      let t = Serve.create ~cfg:(serve_cfg ()) () in
      let submit strat =
        Serve.submit_query t ~strategy:strat ~key:"fault-stale"
          ~db:(fun () -> db)
          ()
      in
      let _first = submit s in
      let collided = submit alt in
      Failpoint.disable Failpoint.Serve_stale_plan;
      if Failpoint.hits Failpoint.Serve_stale_plan = 0 then
        fail "faults:stale_plan" "serve.cache_stale_plan never fired";
      let alt_steps = serve_steps_string (Cost.step_costs db alt) in
      (match serve_response_field "steps" collided with
      | Some steps when Json.to_string steps <> alt_steps -> ()
      | Some _ ->
          fail "faults:stale_plan"
            "planted stale-plan collision went undetected (τ log matches \
             the submitted strategy)"
      | None ->
          fail "faults:stale_plan" "collided response carries no τ log: %s"
            collided))

(* ------------------------------------------------------------------ *)
(* One case through every applicable check.                           *)
(* ------------------------------------------------------------------ *)

let fault_pass = faults

let run_case ?(faults = true) d =
  let db, s = Gen.materialize d in
  let ( >>> ) o k = match o with Pass -> k () | Fail _ -> o in
  differential db s
  >>> fun () ->
  wcoj_differential db s
  >>> fun () ->
  yann_differential db s
  >>> fun () ->
  serve_differential db s
  >>> fun () ->
  metamorphic db s
  >>> fun () ->
  (if Database.size db <= 5 then theorems db else Pass)
  >>> fun () ->
  (* An externally injected fault (self-test, MJ_FAILPOINTS) must stay
     active for the whole case, so the fault pass — which saves,
     resets and restores failpoint state — only runs when none is. *)
  if faults && Failpoint.spec () = "" then fault_pass db s else Pass
