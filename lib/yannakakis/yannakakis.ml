open Mj_relation
open Multijoin
open Mj_hypergraph

let ears_exn d =
  match Gyo.ear_decomposition d with
  | Some ears -> ears
  | None -> invalid_arg "Yannakakis: database scheme is not alpha-acyclic"

let full_reduce db =
  let d = Database.schemes db in
  let ears = ears_exn d in
  (* Leaf-to-root: in ear order, parent := parent ⋉ ear.  Root-to-leaf:
     in reverse order, ear := ear ⋉ parent. *)
  let up db (ear, parent) =
    let r_parent = Database.find db parent in
    let r_ear = Database.find db ear in
    Database.replace db (Relation.semijoin r_parent r_ear)
  in
  let down db (ear, parent) =
    let r_parent = Database.find db parent in
    let r_ear = Database.find db ear in
    Database.replace db (Relation.semijoin r_ear r_parent)
  in
  let db = List.fold_left up db ears in
  List.fold_left down db (List.rev ears)

let join_order d =
  match Gyo.ear_decomposition d with
  | None -> None
  | Some ears ->
      (* Reverse ear order: the root (last surviving scheme) first, then
         each ear joins a part that already contains its parent. *)
      let removed = List.map fst ears in
      let root =
        Scheme.Set.elements
          (List.fold_left
             (fun acc ear -> Scheme.Set.remove ear acc)
             d removed)
      in
      Some (root @ List.rev removed)

let strategy d =
  Option.map Strategy.left_deep (join_order d)

let evaluate db =
  let db = full_reduce db in
  match strategy (Database.schemes db) with
  | None -> assert false (* full_reduce already rejected cyclic schemes *)
  | Some s -> Cost.eval db s

let tau_after_reduction db =
  let reduced = full_reduce db in
  match strategy (Database.schemes db) with
  | None -> assert false
  | Some s -> Cost.tau reduced s
