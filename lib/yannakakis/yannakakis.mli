(** Yannakakis's algorithm for acyclic joins, and its strategy.

    Section 5 discusses Yannakakis's linear strategy for α-acyclic
    databases — every step a lossless join after semijoin reduction —
    and asks whether it is τ-optimal.  This module implements the
    algorithm (full reducer along a join tree, then joins in reverse ear
    order) and exposes the join order as a {!Strategy.t} so its τ can be
    compared against the exact optimum. *)

open Mj_relation
open Multijoin
open Mj_hypergraph

val full_reduce : Database.t -> Database.t
(** The Bernstein–Chiu full reducer: one leaf-to-root and one
    root-to-leaf pass of semijoins along a join tree of the scheme.
    After it, for α-acyclic schemes, every remaining tuple participates
    in the global join.
    @raise Invalid_argument if the scheme is not α-acyclic. *)

val evaluate : Database.t -> Relation.t
(** Full reduction followed by joins in reverse ear order; equals
    [Database.join_all] but with every intermediate result free of
    dangling tuples (each step is monotone increasing on consistent
    states).
    @raise Invalid_argument if the scheme is not α-acyclic. *)

val join_order : Hypergraph.t -> Scheme.t list option
(** The linear join order Yannakakis's algorithm uses: reverse ear
    order, so each joined relation is linked to the part already
    joined.  [None] for cyclic schemes. *)

val strategy : Hypergraph.t -> Strategy.t option
(** The {!join_order} as a left-deep strategy; it never uses Cartesian
    products for connected acyclic schemes. *)

val tau_after_reduction : Database.t -> int
(** τ of {!strategy} on the {e reduced} database — the cost the
    Section 5 discussion attributes to Yannakakis's method (the
    semijoins themselves generate no new tuples under the paper's
    measure, which counts join results). *)
