open Mj_relation
open Mj_hypergraph
open Multijoin

type algorithm =
  | Nested_loop
  | Block_nested_loop of int
  | Hash_join
  | Sort_merge
  | Index_nested_loop

type t =
  | Scan of Scheme.t
  | Join of algorithm * t * t
  | Generic_join of Scheme.t list * Attr.t list
  | Semijoin_program of Jointree.rooted
  | Ranked_enumerate of Jointree.rooted * int

let rec of_strategy ?(algo = fun _ _ -> Hash_join) = function
  | Strategy.Leaf s -> Scan s
  | Strategy.Join n ->
      let left = of_strategy ~algo n.left in
      let right = of_strategy ~algo n.right in
      Join (algo (Strategy.schemes n.left) (Strategy.schemes n.right), left, right)

let rec strategy_of = function
  | Scan s -> Strategy.leaf s
  | Join (_, l, r) -> Strategy.join (strategy_of l) (strategy_of r)
  | Generic_join (ss, _) ->
      (* The node has no binary structure of its own; its strategy
         shadow is the left-deep chain over its relations — the τ
         comparisons in the planner read costs off this shadow. *)
      Strategy.left_deep ss
  | Semijoin_program rt | Ranked_enumerate (rt, _) ->
      (* The join phase is a left-deep chain in root-outward order; the
         semijoin sweeps generate no tuples under the paper's measure,
         so the shadow prices exactly the plan's τ contribution. *)
      Strategy.left_deep (Jointree.join_order rt)

let schemes p = Strategy.schemes (strategy_of p)

let algorithms p =
  let rec go acc = function
    | Scan _ -> acc
    | Join (a, l, r) -> go (go (a :: acc) l) r
    | Generic_join _ | Semijoin_program _ | Ranked_enumerate _ -> acc
  in
  List.rev (go [] p)

let algorithm_name = function
  | Nested_loop -> "nl"
  | Block_nested_loop b -> Printf.sprintf "bnl%d" b
  | Hash_join -> "hash"
  | Sort_merge -> "merge"
  | Index_nested_loop -> "inl"

let rec pp fmt = function
  | Scan s -> Scheme.pp fmt s
  | Join (a, l, r) ->
      Format.fprintf fmt "(%a %s %a)" pp l (algorithm_name a) pp r
  | Generic_join (ss, order) ->
      Format.fprintf fmt "(wcoj";
      List.iter (fun s -> Format.fprintf fmt " %a" Scheme.pp s) ss;
      Format.fprintf fmt " | %s)"
        (String.concat "," (List.map Attr.to_string order))
  | Semijoin_program rt -> pp_yann fmt "yann" rt
  | Ranked_enumerate (rt, k) ->
      pp_yann fmt (Printf.sprintf "topk %d" k) rt

and pp_yann fmt label rt =
  Format.fprintf fmt "(%s root=%a" label Scheme.pp rt.Jointree.root;
  List.iter
    (fun (ear, parent) ->
      Format.fprintf fmt " %a->%a" Scheme.pp ear Scheme.pp parent)
    rt.Jointree.elims;
  Format.fprintf fmt ")"

let to_string p = Format.asprintf "%a" pp p
