(** A makespan model for parallel join evaluation.

    The paper cites parallel pipelined join machines ([16], GAMMA [9]) as
    a reason to keep the cost measure technology-neutral.  This module
    quantifies the tension that choice hides: with unbounded workers and
    per-step work equal to the tuples generated, independent subtrees run
    concurrently, so a strategy's {e makespan} is its critical path

    [makespan(leaf) = 0],
    [makespan(s1 ⋈ s2) = max(makespan(s1), makespan(s2)) + τ(step)]

    while τ itself is total work.  A bushy strategy can trade a little
    total work for a much shorter critical path — so the linear optimum
    certified by Theorem 3 under C3 is {e not} in general the makespan
    optimum, which the PAR experiment measures. *)

open Mj_relation
open Mj_hypergraph
open Multijoin

val makespan : Database.t -> Strategy.t -> int
(** Critical-path cost with exact (materialized) step sizes. *)

val makespan_oracle : (Scheme.Set.t -> int) -> Strategy.t -> int
(** The same against a cardinality oracle. *)

val optimum_makespan :
  ?obs:Mj_obs.Obs.sink ->
  ?subspace:Enumerate.subspace ->
  oracle:(Scheme.Set.t -> int) ->
  Hypergraph.t ->
  Optimal.result option
(** Minimum-makespan strategy by subset DP ([Optimal.result.cost] holds
    the makespan).  [obs] records a [makespan-dp] span plus the
    [opt.partitions_inspected], [opt.memo_hits] and [opt.dp_entries]
    search-effort counters. *)
