(** Physical join plans.

    Section 1 motivates linear strategies by implementation concerns:
    they "can be programmed as nested loops, can take advantage of
    existing indices, and can use pipelining".  This module gives those
    words an executable meaning: a physical plan annotates each step of a
    {!Multijoin.Strategy.t} with a join algorithm, and {!Exec} runs it.

    Algorithms:

    - [Nested_loop]: tuple-at-a-time loop join; the inner input is
      re-evaluated per outer tuple (pipelinable on the outer side);
    - [Block_nested_loop]: the loop join with the outer side consumed in
      blocks of a configurable size;
    - [Hash_join]: classic build/probe — the {e right} child is built
      into a hash table on the common attributes, the left is probed
      pipelined;
    - [Sort_merge]: both inputs materialized, sorted on the common
      attributes and merged;
    - [Index_nested_loop]: like [Hash_join], but when the inner (right)
      child is a base-relation scan, the hash index is taken from — and
      left in — the execution's index cache, so repeated executions (or
      several joins against the same base relation) reuse "existing
      indices" instead of rebuilding them (the Section 1 argument for
      linear strategies).  On a non-scan inner it degrades to an
      ordinary hash join.

    Beyond the binary algorithms, a plan may contain one n-ary
    [Generic_join] node: the worst-case-optimal join of a (typically
    cyclic) sub-hypergraph, evaluated attribute-by-attribute in a fixed
    elimination order with no binary intermediates — see
    {!Mj_relation.Frame.generic_join} and [Planner.Wcoj].

    α-acyclic queries get their own pair of nodes: [Semijoin_program]
    runs Yannakakis's algorithm over a rooted join tree (full semijoin
    reduction, then the joins in root-outward order — τ is exactly the
    join phase's output, semijoins generate nothing under the paper's
    measure), and [Ranked_enumerate] streams only the [k]
    lexicographically least result tuples out of the reduced tree — see
    [Planner.Yannakakis] and {!Mj_relation.Frame.topk}. *)

open Mj_relation
open Mj_hypergraph
open Multijoin

type algorithm =
  | Nested_loop
  | Block_nested_loop of int  (** block size, ≥ 1 *)
  | Hash_join
  | Sort_merge
  | Index_nested_loop

type t =
  | Scan of Scheme.t
  | Join of algorithm * t * t
  | Generic_join of Scheme.t list * Attr.t list
      (** [(relations, elimination order)]: the worst-case-optimal join
          of the listed base relations, binding attributes in the given
          order.  The order is a permutation of the relations' attribute
          union, fixed at plan time so execution is deterministic. *)
  | Semijoin_program of Jointree.rooted
      (** Yannakakis over the rooted join tree: leaf-to-root then
          root-to-leaf semijoin sweeps over the tree's base relations,
          then the left-deep join in root-outward ({!Jointree.join_order})
          order.  Only the join phase contributes τ entries. *)
  | Ranked_enumerate of Jointree.rooted * int
      (** The same reduction, then the [k] lexicographically least
          tuples (by {!Mj_relation.Tuple.compare}) of the result,
          enumerated without materializing the full join. *)

val of_strategy : ?algo:(Scheme.Set.t -> Scheme.Set.t -> algorithm) -> Strategy.t -> t
(** Annotate every step; [algo] receives the children's scheme sets and
    defaults to [Hash_join] everywhere. *)

val strategy_of : t -> Strategy.t
(** Forget the annotations.  A [Generic_join] has no binary structure to
    forget; it maps to the left-deep chain over its relations (the
    strategy shadow the planner's τ comparisons are made against), and a
    [Semijoin_program]/[Ranked_enumerate] to the left-deep chain over
    its {!Jointree.join_order} — the exact join phase it executes.
    @raise Invalid_argument if the plan violates (S3). *)

val schemes : t -> Scheme.Set.t

val algorithms : t -> algorithm list
(** Every join annotation in the plan, pre-order — what the planner
    tests inspect to assert an algorithm was actually selected. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val algorithm_name : algorithm -> string
