open Mj_relation
module Obs = Mj_obs.Obs

type stats = {
  tuples_generated : int;
  result_rows : int;
  dict_size : int;
  probes : int;
  probe_hits : int;
  partitions : int;
  morsels : int;
  per_step : (Scheme.Set.t * int) list;
}

(* Databases whose base relations hold fewer total rows than this run
   single-domain: at that scale the parallel join's fan-out costs more
   than the probes it spreads, and the pool would only add spawn/join
   latency to a sub-millisecond plan. *)
let tiny_rows = 1024

(* The columnar plane, plugged into the generic Driver walker:
   intermediates are dictionary-encoded frames and every step runs the
   one columnar hash kernel — the algorithm annotation is advisory
   (τ and results are algorithm-independent for materializing
   execution), and there are no base-relation indexes, so the INL fast
   path falls back to the ordinary join. *)
module Frame_plane = struct
  let name = "frame"
  let root_span = "execute-frame"

  type item = Frame.t

  type ctx = {
    fdb : Frame.Db.t;
    fstats : Frame.stats;
    domains : int option;
    par_threshold : int option;
    morsel : int option;
    obs : Obs.sink;
    jprobe : Obs.histogram; (* hash probes per join step *)
  }

  let scan ctx s =
    match Frame.Db.find ctx.fdb s with
    | f -> f
    | exception Not_found ->
        invalid_arg
          (Printf.sprintf "Frame_engine: scheme %s not in the database"
             (Scheme.to_string s))

  let join ctx _algo ~common:_ f1 f2 =
    let probes_before = ctx.fstats.Frame.probes in
    let j =
      Frame.natural_join ~obs:ctx.obs ?domains:ctx.domains
        ?par_threshold:ctx.par_threshold ?morsel:ctx.morsel
        ~stats:ctx.fstats f1 f2
    in
    if Obs.enabled ctx.obs then
      Obs.observe ctx.jprobe
        (float_of_int (ctx.fstats.Frame.probes - probes_before));
    if
      Frame.cardinality j > 0
      && Mj_failpoint.Failpoint.fire Frame_lossy_join
    then begin
      (* The planted mutation for [mjoin fuzz --self-test]: silently
         drop the last row of the join output, exactly the class of
         plane-local bug the differential harness exists to catch.
         Never active outside an explicit failpoint activation. *)
      let r = Frame.to_relation j in
      let n = Relation.cardinality r in
      let keep = List.filteri (fun i _ -> i < n - 1) (Relation.tuples r) in
      Frame.of_relation (Frame.dict j) (Relation.make (Relation.scheme r) keep)
    end
    else j

  let index_join _ctx ~common:_ ~outer:_ ~inner:_ = None

  let semijoin ctx ~common:_ f1 f2 =
    let sj = Frame.semijoin ~stats:ctx.fstats f1 f2 in
    if
      Frame.cardinality sj > 0
      && Mj_failpoint.Failpoint.fire Yann_lossy_semijoin
    then begin
      (* The acyclic-path twin of [frame.lossy_join]: silently drop the
         last row of the semijoin output — a lossy reducer loses result
         tuples downstream, exactly what the yann differential leg must
         surface.  Never active outside an explicit failpoint
         activation. *)
      let r = Frame.to_relation sj in
      let n = Relation.cardinality r in
      let keep = List.filteri (fun i _ -> i < n - 1) (Relation.tuples r) in
      Frame.of_relation (Frame.dict sj)
        (Relation.make (Relation.scheme r) keep)
    end
    else sj

  let ranked ctx ~order ~k items =
    Frame.topk ~stats:ctx.fstats ~order ~k (List.map snd items)

  let generic_join ctx ~schemes ~order =
    Frame.Db.generic_join ~stats:ctx.fstats ctx.fdb ~order
      (Scheme.Set.of_list schemes)

  let cardinality = Frame.cardinality
  let note_step _ctx _n = ()
  let algo_label _ = "frame-hash"
  let to_relation _ctx _scheme f = Frame.to_relation f
end

module Drive = Driver.Make (Frame_plane)

let execute_plan ?(obs = Obs.noop) ?domains ?par_threshold ?morsel ?storage
    ?fdb db plan =
  (* Adaptive cutover: a tiny database is executed single-domain
     whatever the configured worker count — the non-partitioned join
     path, no pool, no fan-out. *)
  let base_rows =
    List.fold_left
      (fun acc r -> acc + Relation.cardinality r)
      0 (Database.relations db)
  in
  let domains = if base_rows < tiny_rows then Some 1 else domains in
  let ctx =
    {
      (* A caller-supplied [fdb] (the serve daemon's per-database warm
         dictionary) skips the per-call re-encode; execution only reads
         it, so one encoding can serve concurrent queries. *)
      Frame_plane.fdb =
        (match fdb with
        | Some fdb -> fdb
        | None -> Frame.Db.of_database ?storage db);
      fstats = Frame.fresh_stats ();
      domains;
      par_threshold;
      morsel;
      obs;
      jprobe = Obs.histogram obs "join.probes";
    }
  in
  let result, (log : Driver.step_log) = Drive.execute ~obs ctx plan in
  let dict_size = Frame.Dict.size (Frame.Db.dict ctx.fdb) in
  if Obs.enabled obs then begin
    Obs.add obs "exec.tuples_generated" log.tuples_generated;
    Obs.add obs "frame.dict_size" dict_size;
    Obs.add obs "frame.partitions" ctx.fstats.partitions;
    Obs.add obs "frame.morsels" ctx.fstats.morsels;
    Obs.add obs "frame.probes" ctx.fstats.probes;
    Obs.add obs "frame.probe_hits" ctx.fstats.probe_hits
  end;
  ( result,
    {
      tuples_generated = log.tuples_generated;
      result_rows = Relation.cardinality result;
      dict_size;
      probes = ctx.fstats.probes;
      probe_hits = ctx.fstats.probe_hits;
      partitions = ctx.fstats.partitions;
      morsels = ctx.fstats.morsels;
      per_step = log.per_step;
    } )

let execute ?obs ?domains ?par_threshold ?morsel ?storage db strategy =
  execute_plan ?obs ?domains ?par_threshold ?morsel ?storage db
    (Physical.of_strategy strategy)
