open Mj_relation
open Multijoin
module Obs = Mj_obs.Obs
module Json = Mj_obs.Json

type stats = {
  tuples_generated : int;
  result_rows : int;
  dict_size : int;
  probes : int;
  probe_hits : int;
  partitions : int;
  per_step : (Scheme.Set.t * int) list;
}

let scheme_key d = Format.asprintf "%a" Scheme.Set.pp d

let execute ?(obs = Obs.noop) ?domains ?par_threshold db strategy =
  let fdb = Frame.Db.of_database db in
  let fstats = Frame.fresh_stats () in
  let generated = ref 0 in
  let steps = ref [] in
  let rec run = function
    | Strategy.Leaf s ->
        Obs.span obs "scan" (fun () ->
            let f =
              match Frame.Db.find fdb s with
              | f -> f
              | exception Not_found ->
                  invalid_arg
                    (Printf.sprintf "Frame_engine: scheme %s not in the database"
                       (Scheme.to_string s))
            in
            if Obs.enabled obs then begin
              Obs.set_attr obs "scheme"
                (Json.str (scheme_key (Scheme.Set.singleton s)));
              Obs.set_attr obs "rows" (Json.int (Frame.cardinality f))
            end;
            f)
    | Strategy.Join n ->
        Obs.span obs "join" (fun () ->
            if Obs.enabled obs then begin
              Obs.set_attr obs "algo" (Json.str "frame-hash");
              Obs.set_attr obs "scheme" (Json.str (scheme_key n.schemes))
            end;
            let f1 = run n.left in
            let f2 = run n.right in
            let f = Frame.natural_join ?domains ?par_threshold ~stats:fstats f1 f2 in
            let rows = Frame.cardinality f in
            generated := !generated + rows;
            steps := (n.schemes, rows) :: !steps;
            if Obs.enabled obs then Obs.set_attr obs "rows" (Json.int rows);
            f)
  in
  let f = Obs.span obs "execute-frame" (fun () -> run strategy) in
  let result = Frame.to_relation f in
  let dict_size = Frame.Dict.size (Frame.Db.dict fdb) in
  if Obs.enabled obs then begin
    Obs.add obs "exec.tuples_generated" !generated;
    Obs.add obs "frame.dict_size" dict_size;
    Obs.add obs "frame.partitions" fstats.partitions;
    Obs.add obs "frame.probes" fstats.probes;
    Obs.add obs "frame.probe_hits" fstats.probe_hits
  end;
  ( result,
    {
      tuples_generated = !generated;
      result_rows = Frame.cardinality f;
      dict_size;
      probes = fstats.probes;
      probe_hits = fstats.probe_hits;
      partitions = fstats.partitions;
      per_step = List.rev !steps;
    } )
