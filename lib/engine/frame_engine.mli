(** The columnar strategy executor.

    Evaluates a {!Multijoin.Strategy} bottom-up over
    {!Mj_relation.Frame} frames instead of seed {!Mj_relation.Relation}
    states: the database is dictionary-encoded once (into the heap or
    off-heap bigarray row store selected by [?storage]), every step is
    a compiled-key columnar hash join (morsel-driven over
    [Mj_pool.Pool] on large inputs), and the final frame is decoded
    back, so callers see the same [Relation.t] the materializing
    {!Exec} engine produces.

    Observability matches [Exec]: every leaf opens a ["scan"] span and
    every step a ["join"] span carrying ["scheme"] and ["rows"]
    attributes (so [mjoin explain]'s tree renderer works unchanged),
    and the frame-specific counters [frame.dict_size],
    [frame.partitions], [frame.morsels], [frame.probes] and
    [frame.probe_hits] are added to the sink. *)

open Mj_relation
open Multijoin

type stats = {
  tuples_generated : int;  (** the paper's τ: sum of step output rows *)
  result_rows : int;
  dict_size : int;         (** distinct values interned for the database *)
  probes : int;
  probe_hits : int;
  partitions : int;        (** index build-partitions opened by parallel joins *)
  morsels : int;           (** probe morsels claimed by parallel joins *)
  per_step : (Scheme.Set.t * int) list;  (** post-order, like [Cost.step_costs] *)
}

val tiny_rows : int
(** The adaptive cutover: databases whose base relations total fewer
    rows than this (1024) execute single-domain on the non-partitioned
    join path, whatever [?domains] says — at that scale parallel
    fan-out only adds latency. *)

val execute :
  ?obs:Mj_obs.Obs.sink -> ?domains:int -> ?par_threshold:int ->
  ?morsel:int -> ?storage:Frame.storage ->
  Database.t -> Strategy.t -> Relation.t * stats
(** [execute db s] materializes every step of [s] columnar-side and
    returns the decoded result.  Agrees with [Exec.execute] on the
    result relation and with [Cost.tau db s] on [tuples_generated]
    (certified by the qcheck suite and [bench FRAME]).
    @raise Invalid_argument if a leaf scheme is missing from [db]. *)

val execute_plan :
  ?obs:Mj_obs.Obs.sink -> ?domains:int -> ?par_threshold:int ->
  ?morsel:int -> ?storage:Frame.storage -> ?fdb:Frame.Db.t ->
  Database.t -> Physical.t -> Relation.t * stats
(** Execute an annotated physical plan on the columnar plane.  The
    frame plane has exactly one join kernel, so the per-step algorithm
    annotations are {e advisory}: every step runs the columnar hash
    join (span attribute [algo = "frame-hash"]) whatever the plan says.
    Results and [tuples_generated] still agree with [Exec.execute] on
    the same plan — τ is a property of the join {e order}, not the
    algorithm — which is what lets the planner equivalence suite force
    any policy on either plane.

    [?fdb] supplies a pre-encoded copy of [db] (as built by
    [Frame.Db.of_database]) and skips the per-call dictionary encode —
    the warm-state hook the serve daemon uses to amortize encoding
    across queries.  The caller guarantees it encodes exactly [db];
    execution never mutates it, so one encoding may be shared by
    concurrent executions.  When present, [?storage] is ignored (the
    row store was chosen at encode time).
    @raise Invalid_argument if a scanned scheme is missing from [db]. *)
