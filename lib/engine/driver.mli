(** The backend-agnostic plan walker.

    Section 1's implementation argument — nested loops, existing
    indices, pipelining — used to live twice: once in {!Exec} over seed
    tuple lists and once in {!Frame_engine} over columnar frames, each
    with its own copy of the span bookkeeping and the τ accounting.
    This module keeps exactly one copy.  A data plane implements the
    {!PLANE} signature (how to scan a base relation, how to run one join
    step with a given algorithm, how to count rows); {!Make} supplies
    the recursion over {!Physical.t}, the observability contract, and
    the per-step τ log.

    The observability contract, shared by every plane so the
    [mjoin explain] tree renderer works against any backend: one
    ["scan"] span per leaf and one ["join"] span per step, each carrying
    [scheme] and [rows] attributes, joins additionally [algo]; the whole
    run is wrapped in a root span named by the plane. *)

open Mj_relation

(** What a data plane must provide.  [item] is the plane's intermediate
    representation (seed: tuple list; frame: [Frame.t]). *)
module type PLANE = sig
  val name : string
  (** ["seed"] or ["frame"] — the value of the [--engine] flag. *)

  val root_span : string
  (** Name of the span wrapping the whole execution (seed:
      ["execute"], frame: ["execute-frame"]). *)

  type item
  type ctx
  (** Per-execution state: counters, caches, the encoded database. *)

  val scan : ctx -> Scheme.t -> item
  (** Fetch a base relation.
      @raise Invalid_argument if the scheme is not in the database. *)

  val join :
    ctx -> Physical.algorithm -> common:Attr.Set.t -> item -> item -> item
  (** One join step.  A plane with a single physical operator may treat
      the algorithm annotation as advisory (the frame plane always runs
      its columnar hash join); τ is algorithm-independent for
      materializing execution, so results and step costs agree across
      planes regardless. *)

  val index_join :
    ctx -> common:Attr.Set.t -> outer:item -> inner:Scheme.t -> item option
  (** The [Index_nested_loop]-over-a-scan fast path: join [outer]
      against the {e index} of the base relation [inner] without
      executing the scan.  [None] means the plane keeps no
      base-relation indexes and the driver falls back to executing the
      scan and calling {!join}. *)

  val generic_join :
    ctx -> schemes:Scheme.t list -> order:Attr.t list -> item
  (** One {!Physical.Generic_join} step: the worst-case-optimal join of
      the named base relations, binding attributes in [order].  Both
      planes must produce the canonical result relation (the frame plane
      runs the leapfrog kernel; the seed plane a reference
      sorted-intersection backtracker), so plans containing the node
      stay bit-identical across planes.  The driver wraps the step in a
      single ["join"] span with [algo = "wcoj"] and an [order]
      attribute, and the step contributes one τ entry: its output
      cardinality. *)

  val semijoin : ctx -> common:Attr.Set.t -> item -> item -> item
  (** [semijoin ctx ~common outer inner] is [outer ⋉ inner]: the rows of
      [outer] with at least one join partner in [inner].  Powers the
      {!Physical.Semijoin_program} reduction sweeps; never contributes
      to τ (a semijoin generates no tuples under the paper's measure). *)

  val ranked :
    ctx -> order:Attr.t list -> k:int -> (Scheme.t * item) list -> item
  (** The [k] lexicographically least tuples (by
      {!Mj_relation.Tuple.compare}; [order] is the sorted attributes of
      the union scheme) of the natural join of the given — already
      semijoin-reduced — items, enumerated without materializing the
      full join.  Both planes must stream the identical rows (frame:
      rank-space leapfrog {!Mj_relation.Frame.topk}; seed: the
      reference backtracker with an emission budget). *)

  val cardinality : item -> int
  val note_step : ctx -> int -> unit
  (** Called with each join step's output cardinality (for plane
      counters such as the seed peak-materialization tracker). *)

  val algo_label : Physical.algorithm -> string
  val to_relation : ctx -> Scheme.t -> item -> Relation.t
end

type step_log = {
  tuples_generated : int;  (** the paper's τ: sum of step output rows *)
  per_step : (Scheme.Set.t * int) list;  (** post-order, like [Cost.step_costs] *)
}

val scheme_key : Scheme.Set.t -> string
(** The canonical span attribute for a scheme set (shared with the
    explain renderer). *)

module Make (P : PLANE) : sig
  val execute :
    obs:Mj_obs.Obs.sink -> P.ctx -> Physical.t -> Relation.t * step_log
end
