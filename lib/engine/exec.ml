open Mj_relation
open Multijoin

type stats = {
  tuples_scanned : int;
  tuples_generated : int;
  comparisons : int;
  hash_probes : int;
  index_builds : int;
  index_hits : int;
  max_materialized : int;
  per_step : (Scheme.Set.t * int) list;
}

(* A base-relation index: join-key (canonical binding list of the shared
   attributes) to matching tuples.  The cache is keyed by
   "scheme|attributes". *)
type index_cache = (string, ((Attr.t * Value.t) list, Tuple.t) Hashtbl.t) Hashtbl.t

type counters = {
  mutable scanned : int;
  mutable generated : int;
  mutable compared : int;
  mutable probed : int;
  mutable built : int;
  mutable hits : int;
  mutable peak : int;
  mutable steps : (Scheme.Set.t * int) list;
}

let fresh () =
  {
    scanned = 0;
    generated = 0;
    compared = 0;
    probed = 0;
    built = 0;
    hits = 0;
    peak = 0;
    steps = [];
  }

let note_materialized c n = if n > c.peak then c.peak <- n

let join_key common tu = Tuple.bindings (Tuple.restrict tu common)

(* The join algorithms, each consuming and producing tuple lists (the
   materializing engine keeps children as lists). *)

let nested_loop c out_scheme left right =
  let acc = ref [] in
  List.iter
    (fun t1 ->
      List.iter
        (fun t2 ->
          c.compared <- c.compared + 1;
          if Tuple.joinable t1 t2 then acc := Tuple.merge t1 t2 :: !acc)
        right)
    left;
  ignore out_scheme;
  List.rev !acc

let block_nested_loop c out_scheme block left right =
  if block < 1 then invalid_arg "Exec: block size below 1";
  ignore out_scheme;
  let acc = ref [] in
  let rec blocks = function
    | [] -> ()
    | l ->
        let rec take k = function
          | x :: rest when k > 0 ->
              let taken, dropped = take (k - 1) rest in
              (x :: taken, dropped)
          | rest -> ([], rest)
        in
        let chunk, rest = take block l in
        note_materialized c (List.length chunk);
        List.iter
          (fun t2 ->
            List.iter
              (fun t1 ->
                c.compared <- c.compared + 1;
                if Tuple.joinable t1 t2 then acc := Tuple.merge t1 t2 :: !acc)
              chunk)
          right;
        blocks rest
  in
  blocks left;
  List.rev !acc

let hash_join c common left right =
  (* Build on the right, probe with the left. *)
  let table = Hashtbl.create (max 16 (List.length right)) in
  List.iter (fun t2 -> Hashtbl.add table (join_key common t2) t2) right;
  note_materialized c (List.length right);
  let acc = ref [] in
  List.iter
    (fun t1 ->
      c.probed <- c.probed + 1;
      List.iter
        (fun t2 -> acc := Tuple.merge t1 t2 :: !acc)
        (Hashtbl.find_all table (join_key common t1)))
    left;
  List.rev !acc

let sort_merge c common left right =
  let keyed side = List.map (fun t -> (join_key common t, t)) side in
  let sort side = List.sort (fun (k1, _) (k2, _) -> compare k1 k2) (keyed side) in
  let ls = sort left and rs = sort right in
  note_materialized c (List.length left + List.length right);
  let acc = ref [] in
  (* Standard merge with group expansion on key ties. *)
  let rec merge ls rs =
    match ls, rs with
    | [], _ | _, [] -> ()
    | (k1, _) :: _, (k2, _) :: _ ->
        c.compared <- c.compared + 1;
        if k1 < k2 then merge (List.tl ls) rs
        else if k1 > k2 then merge ls (List.tl rs)
        else begin
          let same k = List.partition (fun (k', _) -> k' = k) in
          let lgroup, lrest = same k1 ls in
          let rgroup, rrest = same k1 rs in
          List.iter
            (fun (_, t1) ->
              List.iter (fun (_, t2) -> acc := Tuple.merge t1 t2 :: !acc) rgroup)
            lgroup;
          merge lrest rrest
        end
  in
  merge ls rs;
  List.rev !acc

let base_relation db s =
  match Database.find db s with
  | r -> r
  | exception Not_found ->
      invalid_arg
        (Printf.sprintf "Exec: scheme %s not in the database"
           (Scheme.to_string s))

(* Fetch or build the hash index of a base relation on the given join
   attributes. *)
let base_index c cache db s common =
  let cache_key =
    Scheme.to_string s ^ "|" ^ Attr.Set.to_string common
  in
  match Hashtbl.find_opt cache cache_key with
  | Some table ->
      c.hits <- c.hits + 1;
      table
  | None ->
      let r = base_relation db s in
      let table = Hashtbl.create (max 16 (Relation.cardinality r)) in
      Relation.iter (fun t -> Hashtbl.add table (join_key common t) t) r;
      c.built <- c.built + 1;
      c.scanned <- c.scanned + Relation.cardinality r;
      note_materialized c (Relation.cardinality r);
      Hashtbl.add cache cache_key table;
      table

let index_join c cache db left common inner_scheme =
  let table = base_index c cache db inner_scheme common in
  let acc = ref [] in
  List.iter
    (fun t1 ->
      c.probed <- c.probed + 1;
      List.iter
        (fun t2 -> acc := Tuple.merge t1 t2 :: !acc)
        (Hashtbl.find_all table (join_key common t1)))
    left;
  List.rev !acc

let rec run c cache db = function
  | Physical.Scan s ->
      let r = base_relation db s in
      let tuples = Relation.tuples r in
      c.scanned <- c.scanned + List.length tuples;
      (s, tuples)
  | Physical.Join (algo, l, r) ->
      let node_schemes =
        Strategy.schemes (Physical.strategy_of (Physical.Join (algo, l, r)))
      in
      (match algo, r with
      | Physical.Index_nested_loop, Physical.Scan inner ->
          (* The inner base relation is reached through its index; only
             the outer child executes. *)
          let ls, left = run c cache db l in
          let common = Attr.Set.inter ls inner in
          let out = index_join c cache db left common inner in
          finish c node_schemes (Attr.Set.union ls inner) out
      | _ ->
          let ls, left = run c cache db l in
          let rs, right = run c cache db r in
          let common = Attr.Set.inter ls rs in
          let out_scheme = Attr.Set.union ls rs in
          let out =
            match algo with
            | Physical.Nested_loop -> nested_loop c out_scheme left right
            | Physical.Block_nested_loop b ->
                block_nested_loop c out_scheme b left right
            | Physical.Hash_join | Physical.Index_nested_loop ->
                (* Index joins on a non-scan inner degrade to hash. *)
                hash_join c common left right
            | Physical.Sort_merge -> sort_merge c common left right
          in
          finish c node_schemes out_scheme out)

and finish c node_schemes out_scheme out =
  let n = List.length out in
  c.generated <- c.generated + n;
  note_materialized c n;
  c.steps <- (node_schemes, n) :: c.steps;
  (out_scheme, out)

let index_cache () : index_cache = Hashtbl.create 16

let execute ?(cache = index_cache ()) db plan =
  let c = fresh () in
  let out_scheme, tuples = run c cache db plan in
  let result = Relation.make out_scheme tuples in
  ( result,
    {
      tuples_scanned = c.scanned;
      tuples_generated = c.generated;
      comparisons = c.compared;
      hash_probes = c.probed;
      index_builds = c.built;
      index_hits = c.hits;
      max_materialized = c.peak;
      per_step = List.rev c.steps;
    } )

type pipeline_stats = {
  emitted_per_stage : int list;
  peak_buffer : int;
  result_size : int;
}

let execute_pipelined db strategy =
  if not (Strategy.is_linear strategy) then
    invalid_arg "Exec.execute_pipelined: strategy is not linear";
  (* Normalize the spine into a join order: the leaf order of a linear
     strategy read so that each element joins the accumulated prefix. *)
  let rec order = function
    | Strategy.Leaf s -> [ s ]
    | Strategy.Join { left; right = Strategy.Leaf s; _ } -> order left @ [ s ]
    | Strategy.Join { left = Strategy.Leaf s; right; _ } -> order right @ [ s ]
    | Strategy.Join _ -> assert false
  in
  match order strategy with
  | [] -> assert false
  | first :: rest ->
      let base s =
        match Database.find db s with
        | r -> r
        | exception Not_found ->
            invalid_arg
              (Printf.sprintf "Exec: scheme %s not in the database"
                 (Scheme.to_string s))
      in
      let peak = ref 0 in
      let counts = ref [] in
      (* Stream the accumulated prefix as a Seq; each stage wraps the
         previous one with a hash-table lookup on a base relation. *)
      let stage (seq, acc_scheme) s =
        let r = base s in
        let common = Attr.Set.inter acc_scheme s in
        let table = Hashtbl.create (max 16 (Relation.cardinality r)) in
        Relation.iter (fun t -> Hashtbl.add table (join_key common t) t) r;
        peak := max !peak (Relation.cardinality r);
        let emitted = ref 0 in
        let count = Seq.map (fun t -> incr emitted; t) in
        let joined =
          Seq.concat_map
            (fun t1 ->
              List.to_seq
                (List.map (Tuple.merge t1)
                   (Hashtbl.find_all table (join_key common t1))))
            seq
        in
        counts := emitted :: !counts;
        (count joined, Attr.Set.union acc_scheme s)
      in
      let first_rel = base first in
      peak := Relation.cardinality first_rel;
      let seq0 = List.to_seq (Relation.tuples first_rel) in
      let final_seq, final_scheme =
        List.fold_left stage (seq0, first) rest
      in
      (* Drain the pipeline once; the per-stage counters fill in as the
         stream flows. *)
      let out = List.of_seq final_seq in
      let result = Relation.make final_scheme out in
      ( result,
        {
          emitted_per_stage = List.rev_map (fun r -> !r) !counts;
          peak_buffer = !peak;
          result_size = Relation.cardinality result;
        } )
