open Mj_relation
open Multijoin
module Obs = Mj_obs.Obs
module Json = Mj_obs.Json

type stats = {
  tuples_scanned : int;
  tuples_generated : int;
  comparisons : int;
  hash_probes : int;
  index_builds : int;
  index_hits : int;
  max_materialized : int;
  per_step : (Scheme.Set.t * int) list;
}

(* A base-relation index: join-key (values of the shared attributes in
   increasing attribute order) to matching tuples.  The cache is keyed
   by "scheme|attributes". *)
type index_cache = (string, (Value.t list, Tuple.t) Hashtbl.t) Hashtbl.t

(* Execution statistics live in an Mj_obs registry; the handles below
   are mutable records, so bumping one is a field assignment — the same
   cost as the ad-hoc mutable record this replaced.  Holding the
   registry lets [execute] fold the totals into a caller's sink. *)
type counters = {
  reg : Obs.registry;
  scanned : Obs.counter;
  generated : Obs.counter;
  compared : Obs.counter;
  probed : Obs.counter;
  built : Obs.counter;
  hits : Obs.counter;
  peak : Obs.counter;
  jprobe : Obs.histogram; (* hash probes per join step *)
}

let fresh () =
  let reg = Obs.registry () in
  {
    reg;
    scanned = Obs.reg_counter reg "exec.tuples_scanned";
    generated = Obs.reg_counter reg "exec.tuples_generated";
    compared = Obs.reg_counter reg "exec.comparisons";
    probed = Obs.reg_counter reg "exec.hash_probes";
    built = Obs.reg_counter reg "exec.index_builds";
    hits = Obs.reg_counter reg "exec.index_hits";
    peak = Obs.reg_counter reg "exec.max_materialized";
    jprobe = Obs.reg_histogram reg "join.probes";
  }

let note_materialized c n = Obs.record_max c.peak n

(* The join-key extractor is compiled once per join: the common
   attributes are listed once, so each probe reads the values directly
   instead of re-deriving a restricted map and its binding list. *)
let key_extractor common =
  let attrs = Attr.Set.elements common in
  fun tu -> List.map (fun a -> Tuple.get tu a) attrs

(* The join algorithms, each consuming and producing tuple lists (the
   materializing engine keeps children as lists). *)

let nested_loop c left right =
  let acc = ref [] in
  List.iter
    (fun t1 ->
      List.iter
        (fun t2 ->
          Obs.incr c.compared 1;
          if Tuple.joinable t1 t2 then acc := Tuple.merge t1 t2 :: !acc)
        right)
    left;
  List.rev !acc

(* Constant-stack chunking: the old [take] recursed once per taken
   element, overflowing on large blocks. *)
let take k l =
  let rec go k acc = function
    | x :: rest when k > 0 -> go (k - 1) (x :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  go k [] l

let block_nested_loop c block left right =
  if block < 1 then invalid_arg "Exec: block size below 1";
  let acc = ref [] in
  let rec blocks = function
    | [] -> ()
    | l ->
        let chunk, rest = take block l in
        note_materialized c (List.length chunk);
        List.iter
          (fun t2 ->
            List.iter
              (fun t1 ->
                Obs.incr c.compared 1;
                if Tuple.joinable t1 t2 then acc := Tuple.merge t1 t2 :: !acc)
              chunk)
          right;
        blocks rest
  in
  blocks left;
  List.rev !acc

let hash_join c common left right =
  (* Build on the right, probe with the left. *)
  let key = key_extractor common in
  let table = Hashtbl.create (max 16 (List.length right)) in
  List.iter (fun t2 -> Hashtbl.add table (key t2) t2) right;
  note_materialized c (List.length right);
  let acc = ref [] in
  List.iter
    (fun t1 ->
      Obs.incr c.probed 1;
      List.iter
        (fun t2 -> acc := Tuple.merge t1 t2 :: !acc)
        (Hashtbl.find_all table (key t1)))
    left;
  List.rev !acc

let sort_merge c common left right =
  let key = key_extractor common in
  let keyed side = List.map (fun t -> (key t, t)) side in
  let sort side = List.sort (fun (k1, _) (k2, _) -> compare k1 k2) (keyed side) in
  let ls = sort left and rs = sort right in
  note_materialized c (List.length left + List.length right);
  let acc = ref [] in
  (* The inputs are sorted, so a key's group is a prefix: peel it off in
     one pass (the old List.partition rescanned the whole remainder per
     group, an O(n^2) expansion).  Comparisons count like the loop
     joins': one per key-order test steering the merge, plus one per
     tuple pair of a matched group (each emitted pair was tested). *)
  let key_run k rows =
    let rec go acc = function
      | (k', t) :: rest when k' = k -> go (t :: acc) rest
      | rest -> (List.rev acc, rest)
    in
    go [] rows
  in
  let rec merge ls rs =
    match ls, rs with
    | [], _ | _, [] -> ()
    | (k1, _) :: ltl, (k2, _) :: rtl ->
        Obs.incr c.compared 1;
        if k1 < k2 then merge ltl rs
        else if k1 > k2 then merge ls rtl
        else begin
          let lgroup, lrest = key_run k1 ls in
          let rgroup, rrest = key_run k1 rs in
          Obs.incr c.compared (List.length lgroup * List.length rgroup);
          List.iter
            (fun t1 ->
              List.iter (fun t2 -> acc := Tuple.merge t1 t2 :: !acc) rgroup)
            lgroup;
          merge lrest rrest
        end
  in
  merge ls rs;
  List.rev !acc

let base_relation db s =
  match Database.find db s with
  | r -> r
  | exception Not_found ->
      invalid_arg
        (Printf.sprintf "Exec: scheme %s not in the database"
           (Scheme.to_string s))

let cache_key s common = Scheme.to_string s ^ "|" ^ Attr.Set.to_string common

(* Fetch or build the hash index of a base relation on the given join
   attributes. *)
let base_index c cache db s common =
  let cache_key = cache_key s common in
  match Hashtbl.find_opt cache cache_key with
  | Some table ->
      Obs.incr c.hits 1;
      table
  | None ->
      let r = base_relation db s in
      let key = key_extractor common in
      let table = Hashtbl.create (max 16 (Relation.cardinality r)) in
      Relation.iter (fun t -> Hashtbl.add table (key t) t) r;
      Obs.incr c.built 1;
      Obs.incr c.scanned (Relation.cardinality r);
      note_materialized c (Relation.cardinality r);
      Hashtbl.add cache cache_key table;
      table

let index_join c cache db left common inner_scheme =
  let table = base_index c cache db inner_scheme common in
  let key = key_extractor common in
  let acc = ref [] in
  List.iter
    (fun t1 ->
      Obs.incr c.probed 1;
      List.iter
        (fun t2 -> acc := Tuple.merge t1 t2 :: !acc)
        (Hashtbl.find_all table (key t1)))
    left;
  List.rev !acc

let index_cache () : index_cache = Hashtbl.create 16
let has_index (cache : index_cache) s ~on = Hashtbl.mem cache (cache_key s on)

let prime_index (cache : index_cache) db s ~on =
  (* Warm an "existing index" (the Section 1 argument): build it outside
     any execution, against throwaway counters, so later executions see
     an index hit instead of a build. *)
  ignore (base_index (fresh ()) cache db s on)

(* The seed row plane, plugged into the generic Driver walker:
   intermediates are materialized tuple lists and the algorithm
   annotation selects among the loop/hash/merge/index kernels above. *)
module Seed_plane = struct
  let name = "seed"
  let root_span = "execute"

  type item = Tuple.t list
  type ctx = { c : counters; cache : index_cache; db : Database.t }

  let scan ctx s =
    let tuples = Relation.tuples (base_relation ctx.db s) in
    Obs.incr ctx.c.scanned (List.length tuples);
    tuples

  let join ctx algo ~common left right =
    let probes_before = Obs.value ctx.c.probed in
    let out =
      match algo with
      | Physical.Nested_loop -> nested_loop ctx.c left right
      | Physical.Block_nested_loop b -> block_nested_loop ctx.c b left right
      | Physical.Hash_join | Physical.Index_nested_loop ->
          (* Index joins on a non-scan inner degrade to hash. *)
          hash_join ctx.c common left right
      | Physical.Sort_merge -> sort_merge ctx.c common left right
    in
    Obs.observe ctx.c.jprobe
      (float_of_int (Obs.value ctx.c.probed - probes_before));
    out

  let index_join ctx ~common ~outer ~inner =
    Some (index_join ctx.c ctx.cache ctx.db outer common inner)

  (* The reference backtracker shared by the generic join and the
     ranked (top-k) enumerator: bind the attributes of [order] one at a
     time, intersecting the sorted distinct values each participating
     relation still allows under the partial assignment, and recurse
     under every common value.  Deliberately simple — tuple lists are
     re-filtered per binding — because this plane exists to certify the
     frame plane's kernels: both must produce the identical canonical
     relation.  Values are visited in ascending [Value.compare] order at
     every level, so emissions stream out in lexicographic order of
     [order] — with [order] the sorted attributes of the union scheme,
     that is exactly [Tuple.compare] order, and stopping after [limit]
     emissions yields the top-k. *)
  exception Budget_spent

  let backtrack ctx ?limit rels order =
    let out = ref [] in
    let emitted = ref 0 in
    let emit t =
      out := t :: !out;
      incr emitted;
      match limit with
      | Some k when !emitted >= k -> raise Budget_spent
      | _ -> ()
    in
    let rec go bound rels = function
      | [] -> emit (Tuple.of_list (List.rev bound))
      | a :: attrs ->
          let holders, others =
            List.partition (fun (s, _) -> Attr.Set.mem a s) rels
          in
          let values_of (_, tuples) =
            List.sort_uniq Value.compare
              (List.map (fun t -> Tuple.get t a) tuples)
          in
          let inter xs ys =
            let rec go xs ys =
              match (xs, ys) with
              | [], _ | _, [] -> []
              | x :: xtl, y :: ytl ->
                  Obs.incr ctx.c.compared 1;
                  let cmp = Value.compare x y in
                  if cmp < 0 then go xtl ys
                  else if cmp > 0 then go xs ytl
                  else x :: go xtl ytl
            in
            go xs ys
          in
          let common =
            match List.map values_of holders with
            | [] -> assert false (* every order attribute has a holder *)
            | vs :: rest -> List.fold_left inter vs rest
          in
          List.iter
            (fun v ->
              let holders' =
                List.map
                  (fun (s, tuples) ->
                    ( s,
                      List.filter
                        (fun t -> Value.equal (Tuple.get t a) v)
                        tuples ))
                  holders
              in
              go ((a, v) :: bound) (holders' @ others) attrs)
            common
    in
    (try go [] rels order with Budget_spent -> ());
    List.rev !out

  let generic_join ctx ~schemes ~order =
    let rels =
      List.map
        (fun s ->
          let tuples = Relation.tuples (base_relation ctx.db s) in
          Obs.incr ctx.c.scanned (List.length tuples);
          (s, tuples))
        schemes
    in
    backtrack ctx rels order

  let semijoin ctx ~common left right =
    let key = key_extractor common in
    let table = Hashtbl.create (max 16 (List.length right)) in
    List.iter (fun t -> Hashtbl.replace table (key t) ()) right;
    note_materialized ctx.c (List.length right);
    List.filter
      (fun t ->
        Obs.incr ctx.c.probed 1;
        Hashtbl.mem table (key t))
      left

  let ranked ctx ~order ~k rels =
    if k <= 0 then [] else backtrack ctx ~limit:k rels order

  let cardinality = List.length

  let note_step ctx n =
    Obs.incr ctx.c.generated n;
    note_materialized ctx.c n

  let algo_label = Physical.algorithm_name
  let to_relation _ctx scheme tuples = Relation.make scheme tuples
end

module Drive = Driver.Make (Seed_plane)

let execute ?(obs = Obs.noop) ?(cache = index_cache ()) db plan =
  let c = fresh () in
  let result, (log : Driver.step_log) =
    Drive.execute ~obs { Seed_plane.c; cache; db } plan
  in
  Obs.merge_registry obs c.reg;
  ( result,
    {
      tuples_scanned = Obs.value c.scanned;
      tuples_generated = Obs.value c.generated;
      comparisons = Obs.value c.compared;
      hash_probes = Obs.value c.probed;
      index_builds = Obs.value c.built;
      index_hits = Obs.value c.hits;
      max_materialized = Obs.value c.peak;
      per_step = log.per_step;
    } )

type pipeline_stats = {
  emitted_per_stage : int list;
  peak_buffer : int;
  result_size : int;
}

let execute_pipelined ?(obs = Obs.noop) db strategy =
  if not (Strategy.is_linear strategy) then
    invalid_arg "Exec.execute_pipelined: strategy is not linear";
  (* Normalize the spine into a join order: the leaf order of a linear
     strategy read so that each element joins the accumulated prefix. *)
  let rec order = function
    | Strategy.Leaf s -> [ s ]
    | Strategy.Join { left; right = Strategy.Leaf s; _ } -> order left @ [ s ]
    | Strategy.Join { left = Strategy.Leaf s; right; _ } -> order right @ [ s ]
    | Strategy.Join _ -> assert false
  in
  match order strategy with
  | [] -> assert false
  | first :: rest ->
      Obs.span obs "execute-pipelined" (fun () ->
          let base s =
            match Database.find db s with
            | r -> r
            | exception Not_found ->
                invalid_arg
                  (Printf.sprintf "Exec: scheme %s not in the database"
                     (Scheme.to_string s))
          in
          let peak = ref 0 in
          let counts = ref [] in
          (* Stream the accumulated prefix as a Seq; each stage wraps the
             previous one with a hash-table lookup on a base relation. *)
          let stage (seq, acc_scheme) s =
            Obs.span obs "pipeline-stage" (fun () ->
                let r = base s in
                let common = Attr.Set.inter acc_scheme s in
                let key = key_extractor common in
                let table = Hashtbl.create (max 16 (Relation.cardinality r)) in
                Relation.iter (fun t -> Hashtbl.add table (key t) t) r;
                peak := max !peak (Relation.cardinality r);
                if Obs.enabled obs then begin
                  Obs.set_attr obs "scheme" (Json.str (Scheme.to_string s));
                  Obs.set_attr obs "build_rows"
                    (Json.int (Relation.cardinality r))
                end;
                let emitted = ref 0 in
                let count = Seq.map (fun t -> incr emitted; t) in
                let joined =
                  Seq.concat_map
                    (fun t1 ->
                      List.to_seq
                        (List.map (Tuple.merge t1)
                           (Hashtbl.find_all table (key t1))))
                    seq
                in
                counts := emitted :: !counts;
                (count joined, Attr.Set.union acc_scheme s))
          in
          let first_rel = base first in
          peak := Relation.cardinality first_rel;
          let seq0 = List.to_seq (Relation.tuples first_rel) in
          let final_seq, final_scheme =
            List.fold_left stage (seq0, first) rest
          in
          (* Drain the pipeline once; the per-stage counters fill in as
             the stream flows. *)
          let out =
            Obs.span obs "pipeline-drain" (fun () -> List.of_seq final_seq)
          in
          let result = Relation.make final_scheme out in
          let emitted_per_stage = List.rev_map (fun r -> !r) !counts in
          if Obs.enabled obs then begin
            Obs.add obs "exec.tuples_generated"
              (List.fold_left ( + ) 0 emitted_per_stage);
            Obs.record_max (Obs.counter obs "exec.peak_buffer") !peak;
            Obs.add obs "exec.result_rows" (Relation.cardinality result)
          end;
          ( result,
            {
              emitted_per_stage;
              peak_buffer = !peak;
              result_size = Relation.cardinality result;
            } ))
