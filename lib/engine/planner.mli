(** Lowering logical strategies to physical plans.

    A {!Multijoin.Strategy.t} fixes the join {e order} — the object the
    paper's theorems rank by τ.  This module fixes the remaining degree
    of freedom, the per-step {e algorithm}, turning a strategy into a
    {!Physical.t} the engine can run.  The policy spectrum:

    - [Hash_all] — the historical default: every step a hash join
      (what [Physical.of_strategy] did unconditionally before this
      layer existed);
    - [Forced a] — every step the given algorithm, for apples-to-apples
      experiments and the planner equivalence suite;
    - [Cost_based] — a System-R-flavoured chooser over
      {!Mj_optimizer.Catalog} statistics: per step it estimates both
      children via {!Mj_optimizer.Estimate.of_catalog} (or a caller
      oracle), prices each algorithm in tuples touched — loop joins
      pay their pairwise comparisons, with the block variant amortizing
      inner re-traversals over blocks of 64; hash is linear plus a
      duplicate penalty from the build side's distinct counts;
      sort-merge n·log n; index-nested-loop is probe-only when the
      execution cache already holds the inner base relation's index
      (Section 1's "existing indices"); on Cartesian steps the
      key-based algorithms are priced out — and keeps the cheapest.

    Determinism: candidates are priced by pure formulas over integer
    estimates and compared in a fixed order with a strict minimum, so
    lowering is a function of the (database, strategy, warm-index set)
    triple — same inputs, same plan, on every run and every domain
    count.  Changing the algorithm never changes the result relation or
    τ (materializing execution generates the same tuples in any case);
    only wall-clock and operator counters move.  The qcheck equivalence
    suite certifies exactly that, on both data planes. *)

open Mj_relation
open Mj_hypergraph
open Multijoin

type policy =
  | Hash_all  (** every step [Hash_join] — the pre-planner behavior *)
  | Cost_based  (** catalog-driven per-step choice *)
  | Wcoj
      (** worst-case-optimal: cyclic strategies collapse into one
          {!Physical.Generic_join} node over the whole scheme set;
          acyclic ones fall back to the [Cost_based] arm *)
  | Yannakakis
      (** acyclic-first: α-acyclic strategies (two or more relations)
          lower to a {!Physical.Semijoin_program} over the cost-best
          rooted join tree; cyclic ones fall through to the [Wcoj] arm —
          every query routes to the algorithm whose worst case matches
          its structure *)
  | Forced of Physical.algorithm  (** every step the given algorithm *)

val policy_name : policy -> string
(** ["hash"], ["cost"], ["wcoj"], ["yann"], or ["forced-<algo>"]. *)

val policy_of_string : string -> policy option
(** Parses the [--policy] flag values ["hash"], ["cost"], ["wcoj"] and
    ["yann"] (case-insensitive); forced policies are built
    programmatically (e.g. from [mjoin explain --algo]). *)

val block_size : int
(** Block size priced and emitted for [Block_nested_loop] (64). *)

val is_cyclic : Scheme.Set.t -> bool
(** Does the [Wcoj] policy emit a generic join for this scheme set?
    True iff it has at least three relations and its hypergraph is not
    α-acyclic (GYO).  On α-acyclic schemes binary plans are already
    worst-case optimal (Yannakakis), so the node is reserved for the
    cyclic case where the AGM bound separates the two: the generic
    join's worst case is [AGM(D)] while every binary plan additionally
    pays a strictly positive AGM term per internal step — polynomially
    larger on cyclic schemes (triangle: [N^{3/2}] vs [N²]). *)

val elimination_order : Scheme.Set.t -> Attr.t list
(** The attribute-binding order of an emitted {!Physical.Generic_join}:
    attributes shared by more relations first (so the earliest levels
    intersect the most iterators), ties by attribute order.  A pure
    function of the scheme set — plans are reproducible across runs,
    planes and domain counts. *)

val yann_tree :
  ?oracle:(Scheme.Set.t -> int) ->
  Database.t ->
  Scheme.Set.t ->
  Jointree.rooted option
(** The rooted join tree the [Yannakakis] policy would run: [None] when
    the scheme set is cyclic (or empty); otherwise the cost-optimal
    root/orientation — every join tree ([Jointree.all_join_trees]) when
    the set has at most 6 relations, GYO's ear tree beyond, each rooted
    at every scheme, priced as the sum of catalog-estimated
    cardinalities of the join phase's left-deep prefixes (semijoins are
    free under the paper's τ), first strict minimum in a fixed
    enumeration order.  What [mjoin explain] prints as the chosen root
    and semijoin order. *)

val lower :
  ?policy:policy ->
  ?oracle:(Scheme.Set.t -> int) ->
  ?indexes:Exec.index_cache ->
  Database.t ->
  Strategy.t ->
  Physical.t
(** [lower db s] annotates every step of [s].  [policy] defaults to
    [Hash_all].  Under [Cost_based], [oracle] overrides the catalog
    estimator (pass {!Multijoin.Cost.cardinality_oracle} for
    true-cardinality lowering) and [indexes] — typically the
    [Engine.Config]'s cache — marks which base-relation indexes are
    already warm.  Under [Wcoj], a strategy whose scheme set
    {!is_cyclic} lowers to a single {!Physical.Generic_join} over the
    whole set (its join order is discarded — the node is n-ary) with
    {!elimination_order}; otherwise the [Cost_based] arm applies
    unchanged.  Under [Yannakakis], an α-acyclic strategy over at least
    two relations lowers to [Physical.Semijoin_program (yann_tree …)]
    and anything else falls through to the [Wcoj] arm.
    @raise Not_found under [Cost_based] if the strategy mentions a
    scheme outside [db] (the estimator has no statistics for it);
    execution would reject such a plan anyway. *)

val lower_ranked :
  ?oracle:(Scheme.Set.t -> int) ->
  Database.t ->
  Strategy.t ->
  k:int ->
  Physical.t option
(** The [mjoin topk] lowering: [Physical.Ranked_enumerate] over
    {!yann_tree} when the strategy's scheme set is α-acyclic, [None]
    when it is cyclic (ranked enumeration streams out of a reduced join
    tree, which a cyclic query does not have). *)
