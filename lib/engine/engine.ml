open Mj_relation
open Multijoin
module Obs = Mj_obs.Obs
module Pool = Mj_pool.Pool

type plane = Seed | Frame

let plane_name = function Seed -> "seed" | Frame -> "frame"

let plane_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "seed" -> Some Seed
  | "frame" -> Some Frame
  | _ -> None

let backend_of_plane = function
  | Seed -> Cost.Cache.Seed
  | Frame -> Cost.Cache.Frame

module Config = struct
  type t = {
    plane : plane;
    domains : int;
    obs : Obs.sink;
    algo_policy : Planner.policy;
    index_cache : Exec.index_cache;
    telemetry : string option;
    frame_storage : Frame.storage;
    morsel : int option;
  }

  (* The single point of environment reads in the whole library tree:
     MJ_DATA_PLANE, MJ_DOMAINS, MJ_ALGO_POLICY, MJ_TELEMETRY,
     MJ_FRAME_STORAGE and MJ_MORSEL are read once per process, here,
     and the resolved values are pushed down to the two modules that
     used to read the environment themselves (the pool's default
     worker count and [Cost.Cache]'s default backend), so every legacy
     caller keeps its env-driven behavior without a second read. *)
  let env =
    lazy
      (let plane =
         match Sys.getenv_opt "MJ_DATA_PLANE" with
         | Some s when String.lowercase_ascii (String.trim s) = "frame" ->
             Frame
         | _ -> Seed
       in
       let domains =
         match Sys.getenv_opt "MJ_DOMAINS" with
         | Some s -> (
             try Some (max 1 (int_of_string (String.trim s)))
             with _ -> Some 1)
         | None -> None
       in
       let policy =
         match Sys.getenv_opt "MJ_ALGO_POLICY" with
         | Some s ->
             Option.value (Planner.policy_of_string s)
               ~default:Planner.Hash_all
         | None -> Planner.Hash_all
       in
       let telemetry =
         match Sys.getenv_opt "MJ_TELEMETRY" with
         | Some s when String.trim s <> "" -> Some (String.trim s)
         | _ -> None
       in
       let frame_storage =
         match Sys.getenv_opt "MJ_FRAME_STORAGE" with
         | Some s ->
             Option.value (Frame.storage_of_string s) ~default:Frame.Heap
         | None -> Frame.Heap
       in
       let morsel =
         match Sys.getenv_opt "MJ_MORSEL" with
         | Some s -> (
             try Some (max 1 (int_of_string (String.trim s))) with _ -> None)
         | None -> None
       in
       (match Sys.getenv_opt "MJ_FAILPOINTS" with
       | Some s -> (
           match Mj_failpoint.Failpoint.set_spec s with
           | Ok () -> ()
           | Error msg -> failwith ("MJ_FAILPOINTS: " ^ msg))
       | None -> ());
       Cost.Cache.set_env_backend (backend_of_plane plane);
       (match domains with Some d -> Pool.set_env_domains d | None -> ());
       (plane, domains, policy, telemetry, frame_storage, morsel))

  let of_env ?(obs = Obs.noop) () =
    let plane, domains, policy, telemetry, frame_storage, morsel =
      Lazy.force env
    in
    {
      plane;
      domains =
        (match domains with Some d -> d | None -> Pool.default_domains ());
      obs;
      algo_policy = policy;
      index_cache = Exec.index_cache ();
      telemetry;
      frame_storage;
      morsel;
    }

  let make ?plane ?domains ?policy ?obs ?telemetry ?storage ?morsel () =
    let base = of_env ?obs () in
    {
      base with
      plane = Option.value plane ~default:base.plane;
      domains = (match domains with Some d -> max 1 d | None -> base.domains);
      algo_policy = Option.value policy ~default:base.algo_policy;
      telemetry =
        (match telemetry with Some _ -> telemetry | None -> base.telemetry);
      frame_storage = Option.value storage ~default:base.frame_storage;
      morsel =
        (match morsel with Some m -> Some (max 1 m) | None -> base.morsel);
    }

  let backend c = backend_of_plane c.plane
end

type stats = {
  plane : plane;
  tuples_generated : int;
  result_rows : int;
  per_step : (Scheme.Set.t * int) list;
  seed : Exec.stats option;
  frame : Frame_engine.stats option;
}

module type BACKEND = sig
  val plane : plane

  val execute : Config.t -> Database.t -> Physical.t -> Relation.t * stats
end

module Seed_backend = struct
  let plane = Seed

  let execute (cfg : Config.t) db plan =
    let r, (s : Exec.stats) =
      Exec.execute ~obs:cfg.obs ~cache:cfg.index_cache db plan
    in
    ( r,
      {
        plane;
        tuples_generated = s.tuples_generated;
        result_rows = Relation.cardinality r;
        per_step = s.per_step;
        seed = Some s;
        frame = None;
      } )
end

module Frame_backend = struct
  let plane = Frame

  let execute_warm ?fdb (cfg : Config.t) db plan =
    let r, (s : Frame_engine.stats) =
      Frame_engine.execute_plan ~obs:cfg.obs ~domains:cfg.domains
        ?morsel:cfg.morsel ~storage:cfg.frame_storage ?fdb db plan
    in
    ( r,
      {
        plane;
        tuples_generated = s.tuples_generated;
        result_rows = s.result_rows;
        per_step = s.per_step;
        seed = None;
        frame = Some s;
      } )

  let execute cfg db plan = execute_warm cfg db plan
end

let backend = function
  | Seed -> (module Seed_backend : BACKEND)
  | Frame -> (module Frame_backend : BACKEND)

let lower (cfg : Config.t) db strategy =
  Planner.lower ~policy:cfg.algo_policy ~indexes:cfg.index_cache db strategy

let execute_plan ?fdb (cfg : Config.t) db plan =
  (* A warm frame dictionary only means something on the frame plane;
     the seed plane ignores it (its warm state is the index cache the
     config already carries). *)
  match (cfg.plane, fdb) with
  | Frame, Some _ -> Frame_backend.execute_warm ?fdb cfg db plan
  | _ ->
      let (module B) = backend cfg.plane in
      B.execute cfg db plan

let run ?fdb cfg db strategy = execute_plan ?fdb cfg db (lower cfg db strategy)
