(** Plan execution.

    Two modes, matching the two implementation styles Section 1 alludes
    to:

    - {!execute}: materializing — every join node's result is computed
      and kept, whatever the algorithm.  The total number of tuples
      generated equals the paper's [τ] of the underlying strategy
      {e exactly} (the test suite asserts this for every algorithm), so
      the engine doubles as an independent validation of the cost
      measure.

    - {!execute_pipelined}: for {e linear} strategies only — the spine
      is streamed tuple-at-a-time through hash tables built on the base
      relations, so no intermediate result is ever materialized.  The
      peak memory footprint is the largest base relation, not the
      largest intermediate; this is the pipelining argument for linear
      strategies made concrete. *)

open Mj_relation
open Multijoin

type stats = {
  tuples_scanned : int;     (** tuples read out of base relations *)
  tuples_generated : int;   (** join-output tuples across all steps; equals [τ] *)
  comparisons : int;        (** tuple-pair tests (loop and merge joins) *)
  hash_probes : int;        (** probe lookups (hash and index joins) *)
  index_builds : int;       (** base-relation indexes built this execution *)
  index_hits : int;         (** joins served by an already-built index *)
  max_materialized : int;   (** largest relation/hash-table/sort buffer held *)
  per_step : (Scheme.Set.t * int) list;
      (** output cardinality per join node, post-order — comparable to
          {!Multijoin.Cost.step_costs} *)
}

type index_cache
(** Hash indexes over base relations, keyed by (scheme, join
    attributes).  Pass the same cache to several {!execute} calls to
    model pre-existing indices: later runs probe without building. *)

val index_cache : unit -> index_cache

val has_index : index_cache -> Scheme.t -> on:Attr.Set.t -> bool
(** Whether the cache already holds an index of base relation [s] on
    the given join attributes — what the cost-based {!Planner} consults
    to price [Index_nested_loop] as probe-only. *)

val prime_index : index_cache -> Database.t -> Scheme.t -> on:Attr.Set.t -> unit
(** Build (if absent) the index of a base relation on the given join
    attributes, outside any execution — modelling Section 1's
    "existing indices".  Subsequent {!execute} runs through the same
    cache count an [index_hits] instead of an [index_builds].
    @raise Invalid_argument if the scheme is not in the database. *)

val execute :
  ?obs:Mj_obs.Obs.sink ->
  ?cache:index_cache ->
  Database.t ->
  Physical.t ->
  Relation.t * stats
(** Materializing execution.  [cache] (fresh by default) only affects
    [Index_nested_loop] steps.  [obs] (noop by default) collects a span
    per plan node — attributes [scheme], [rows], and [algo] on joins —
    and receives the execution counters ([exec.tuples_scanned], …) when
    the run completes; with the default sink behaviour is bit-identical
    to an uninstrumented build.
    @raise Invalid_argument if a scanned scheme is missing from the
    database or a block size is below 1. *)

type pipeline_stats = {
  emitted_per_stage : int list;
      (** tuples flowing out of each spine position (the τ step costs) *)
  peak_buffer : int;  (** largest hash table built (base relations only) *)
  result_size : int;
}

val execute_pipelined :
  ?obs:Mj_obs.Obs.sink ->
  Database.t ->
  Strategy.t ->
  Relation.t * pipeline_stats
(** Streaming execution of a linear strategy.
    @raise Invalid_argument if the strategy is not linear. *)
