open Mj_relation
open Mj_hypergraph
open Multijoin
module Catalog = Mj_optimizer.Catalog
module Estimate = Mj_optimizer.Estimate

type policy =
  | Hash_all
  | Cost_based
  | Wcoj
  | Yannakakis
  | Forced of Physical.algorithm

let policy_name = function
  | Hash_all -> "hash"
  | Cost_based -> "cost"
  | Wcoj -> "wcoj"
  | Yannakakis -> "yann"
  | Forced a -> "forced-" ^ Physical.algorithm_name a

let policy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "hash" -> Some Hash_all
  | "cost" -> Some Cost_based
  | "wcoj" -> Some Wcoj
  | "yann" -> Some Yannakakis
  | _ -> None

let block_size = 64

type env = {
  catalog : Catalog.t;
  oracle : Scheme.Set.t -> int;
  has_index : Scheme.t -> Attr.Set.t -> bool;
}

(* Estimated distinct values of attribute [a] within the join of the
   base relations [d]: the smallest per-relation distinct count among
   the relations of [d] carrying [a] (a join can only lose values).
   Falls back to [card] — key-like — when the catalog is silent. *)
let distinct_in cat d a ~card =
  let best =
    Scheme.Set.fold
      (fun s acc ->
        if Attr.Set.mem a s then
          match Catalog.distinct cat s a with
          | v -> min acc v
          | exception Not_found -> acc
        else acc)
      d max_int
  in
  if best = max_int then card else max 1 (min card best)

(* Expected matches per distinct probe key on the build side: build
   cardinality over the estimated number of distinct composite keys.
   1.0 means key-like (each probe finds at most ~one group); large
   values mean the skewed, duplicate-heavy regime the paper's Part II
   examples are built from. *)
let dup_factor cat right_schemes common cr =
  if Attr.Set.is_empty common then 1.0
  else
    let keys =
      Attr.Set.fold
        (fun a acc ->
          acc *. float_of_int (distinct_in cat right_schemes a ~card:cr))
        common 1.0
    in
    let keys = Float.max 1.0 (Float.min (float_of_int cr) keys) in
    float_of_int cr /. keys

let log2 x = if x <= 2.0 then 1.0 else Float.log x /. Float.log 2.0

(* Price one step per algorithm, in "tuples touched" units comparable
   across algorithms, and take the first strict minimum of a fixed
   candidate order — floats only feed a comparison between deterministic
   formulas over integer inputs, so lowering is a pure function of the
   (database, strategy, warm indexes) triple. *)
let choose env left_schemes right_schemes right_leaf =
  let cl = float_of_int (max 1 (env.oracle left_schemes)) in
  let cr_int = max 1 (env.oracle right_schemes) in
  let cr = float_of_int cr_int in
  let common =
    Attr.Set.inter
      (Scheme.Set.universe left_schemes)
      (Scheme.Set.universe right_schemes)
  in
  let cartesian = Attr.Set.is_empty common in
  let dup = dup_factor env.catalog right_schemes common cr_int in
  (* Loop joins pay their comparisons (this is an in-memory engine):
     both test every tuple pair, and the nested loop additionally
     re-traverses the inner input once per outer tuple where the
     block variant re-traverses it once per block — so NL only wins
     the degenerate one-row-outer steps and BNL the remaining
     Cartesian ones. *)
  let c_nl = 2.0 *. (cl *. cr) in
  let c_bnl =
    (cl *. cr) +. (Float.ceil (cl /. float_of_int block_size) *. cr) +. cl
  in
  (* On a Cartesian step the key-based algorithms degenerate (every
     build key is equal, every probe walks the whole inner), so they
     are priced out and the loop joins compete among themselves. *)
  let c_hash =
    if cartesian then 2.0 *. c_nl else cl +. cr +. (cl *. (dup -. 1.0))
  in
  let c_merge =
    if cartesian then 2.0 *. c_nl
    else (cl *. log2 cl) +. (cr *. log2 cr) +. cl +. cr
  in
  let c_inl =
    match right_leaf with
    | Some s when not cartesian ->
        (* Probe-only when the base relation's index on these attributes
           already exists; else pay one build of the inner.  The +0.5
           models per-probe indirection, so a cold index never beats the
           plain hash join it otherwise equals. *)
        let build = if env.has_index s common then 0.0 else cr in
        Some (cl +. build +. (cl *. (dup -. 1.0)) +. 0.5)
    | _ -> None
  in
  let candidates =
    (Physical.Hash_join, c_hash)
    :: (Physical.Sort_merge, c_merge)
    :: (match c_inl with
       | Some c -> [ (Physical.Index_nested_loop, c) ]
       | None -> [])
    @ [
        (Physical.Block_nested_loop block_size, c_bnl);
        (Physical.Nested_loop, c_nl);
      ]
  in
  match candidates with
  | [] -> assert false
  | (a0, c0) :: rest ->
      fst
        (List.fold_left
           (fun (best, bc) (a, c) -> if c < bc then (a, c) else (best, bc))
           (a0, c0) rest)

(* Where the generic join earns its keep: a database scheme whose
   hypergraph is cyclic.  On α-acyclic schemes a semijoin-reduced binary
   plan is already worst-case optimal (Yannakakis), so the node would
   only replace one optimal evaluation with another. *)
let is_cyclic schemes =
  Scheme.Set.cardinal schemes >= 3 && not (Gyo.is_alpha_acyclic_bits schemes)

(* The elimination order of a generic join, fixed at plan time: most
   shared attributes first (each level then intersects the most
   relations, shrinking the search space earliest), ties by attribute
   name.  A pure function of the scheme set, so plans — and therefore
   executions, spans and τ — are reproducible across runs, planes and
   domain counts. *)
let elimination_order schemes =
  let count a =
    Scheme.Set.fold
      (fun s acc -> if Attr.Set.mem a s then acc + 1 else acc)
      schemes 0
  in
  let attrs = Attr.Set.elements (Scheme.Set.universe schemes) in
  List.stable_sort
    (fun a b ->
      match compare (count b) (count a) with
      | 0 -> Attr.compare a b
      | c -> c)
    attrs

(* The cost-based side of the acyclic arm: among candidate join trees
   and roots, pick the rooted orientation whose join phase — a
   left-deep fold over [Jointree.join_order] — is cheapest under the
   catalog estimates.  Semijoins are not priced: they generate no
   tuples under the paper's measure, and after a full reduction the
   join phase is what τ charges.  Candidates are enumerated in a fixed
   deterministic order (trees as generated, roots sorted) and the first
   strict minimum wins, so lowering stays a pure function of the
   (database, strategy) pair. *)
let best_rooted_tree ~oracle schemes trees =
  let price rt =
    match Jointree.join_order rt with
    | [] | [ _ ] -> 0
    | first :: rest ->
        let _, cost =
          List.fold_left
            (fun (acc, c) s ->
              let acc = Scheme.Set.add s acc in
              (acc, c + max 1 (oracle acc)))
            (Scheme.Set.singleton first, 0)
            rest
        in
        cost
  in
  let candidates =
    List.concat_map
      (fun t ->
        List.map (fun r -> Jointree.root_at t r) (Scheme.Set.elements schemes))
      trees
  in
  match candidates with
  | [] -> invalid_arg "Planner: no join tree candidates"
  | rt0 :: rest ->
      fst
        (List.fold_left
           (fun (best, bc) rt ->
             let c = price rt in
             if c < bc then (rt, c) else (best, bc))
           (rt0, price rt0) rest)

(* The cost-best rooted join tree of an α-acyclic scheme set, or [None]
   when the set is cyclic (or empty).  Exhaustive tree search where it
   is affordable, GYO's ear tree (always a join tree) beyond. *)
let yann_tree ?oracle db schemes =
  if Scheme.Set.is_empty schemes || not (Gyo.is_alpha_acyclic_bits schemes)
  then None
  else
    match Gyo.ear_decomposition schemes with
    | None -> None
    | Some edges ->
        let catalog = Catalog.of_database db in
        let oracle =
          match oracle with
          | Some o -> o
          | None -> Estimate.of_catalog catalog
        in
        (* Same robustness contract as the cost-based arm: oversized
           estimates may change which root/orientation wins — never the
           result or τ-is-the-join-phase. *)
        let oracle d =
          let v = oracle d in
          if Mj_failpoint.Failpoint.fire Estimate_oversize then
            if v > max_int / 1000 then max_int else v * 1000
          else v
        in
        let trees =
          if Scheme.Set.cardinal schemes <= 6 then
            match Jointree.all_join_trees schemes with
            | [] -> [ edges ]
            | ts -> ts
          else [ edges ]
        in
        Some (best_rooted_tree ~oracle schemes trees)

let rec lower ?(policy = Hash_all) ?oracle ?indexes db strategy =
  match policy with
  | Hash_all -> Physical.of_strategy strategy
  | Forced a -> Physical.of_strategy ~algo:(fun _ _ -> a) strategy
  | Yannakakis -> (
      (* The asymptotically right algorithm for the α-acyclic regime:
         Yannakakis's semijoin program is instance-optimal there (total
         work O(input + output)), so every acyclic query lowers to a
         [Semijoin_program] over a cost-picked rooted join tree, and
         cyclic queries fall through to the wcoj arm — between them,
         every query now routes to the algorithm whose worst case
         matches its structure.  Single-relation strategies keep their
         trivial binary lowering. *)
      let schemes = Strategy.schemes strategy in
      match
        if Scheme.Set.cardinal schemes >= 2 then yann_tree ?oracle db schemes
        else None
      with
      | Some rt -> Physical.Semijoin_program rt
      | None -> lower ~policy:Wcoj ?oracle ?indexes db strategy)
  | Wcoj ->
      (* Priced by the AGM bound, by dominance rather than per-plan
         arithmetic: the generic join's worst case over the whole
         sub-database is AGM(D), while any binary plan's worst case is
         AGM(D) for its final step {e plus} a strictly positive AGM term
         per internal step — on a cyclic scheme the internal terms are
         polynomially large (triangle: N^{3/2} vs N^2), so Generic_join
         wins unconditionally wherever it applies.  Catalog estimates
         cannot see the skew that inflates binary intermediates (the
         uniform formula underestimates zipfian blow-ups by orders of
         magnitude), so estimate-level pricing would mispick exactly on
         the workloads the node exists for; the bound itself is still
         surfaced — [Cost.Cache.agm], [mjoin explain] — as the
         certificate of why.  Acyclic strategies fall back to the
         cost-based arm: there binary plans are already optimal and the
         chooser picks good per-step algorithms. *)
      let schemes = Strategy.schemes strategy in
      if is_cyclic schemes then
        Physical.Generic_join
          (Scheme.Set.elements schemes, elimination_order schemes)
      else lower ~policy:Cost_based ?oracle ?indexes db strategy
  | Cost_based ->
      let catalog = Catalog.of_database db in
      let oracle =
        match oracle with
        | Some o -> o
        | None -> Estimate.of_catalog catalog
      in
      (* The oversize failpoint feeds the chooser estimates that are
         wrong by three orders of magnitude.  A bad estimate may change
         which algorithm wins a step — never the join result or τ, which
         is the robustness contract the check harness asserts. *)
      let oracle d =
        let v = oracle d in
        if Mj_failpoint.Failpoint.fire Estimate_oversize then
          if v > max_int / 1000 then max_int else v * 1000
        else v
      in
      let has_index =
        match indexes with
        | Some cache -> fun s on -> Exec.has_index cache s ~on
        | None -> fun _ _ -> false
      in
      let env = { catalog; oracle; has_index } in
      let rec go = function
        | Strategy.Leaf s -> Physical.Scan s
        | Strategy.Join n ->
            let l = go n.left in
            let r = go n.right in
            let right_leaf =
              match n.right with Strategy.Leaf s -> Some s | _ -> None
            in
            let algo =
              choose env (Strategy.schemes n.left) (Strategy.schemes n.right)
                right_leaf
            in
            Physical.Join (algo, l, r)
      in
      go strategy

(* Ranked (top-k) lowering — the [mjoin topk] surface.  Only defined on
   α-acyclic queries (the ranked enumerator streams out of a reduced
   join tree); [None] tells the caller the query is cyclic and must be
   answered by a full evaluation instead. *)
let lower_ranked ?oracle db strategy ~k =
  let schemes = Strategy.schemes strategy in
  Option.map
    (fun rt -> Physical.Ranked_enumerate (rt, k))
    (yann_tree ?oracle db schemes)
