(** The unified engine: one configuration, one lowering pipeline, two
    data planes.

    Everything an execution needs travels in one explicit
    {!Config.t} record built {e once} at a process entry point and
    threaded everywhere:

    {v
        flags / env                Strategy.t (logical join order)
            │                          │
            ▼                          ▼
       Config.make  ──────────►   Planner.lower   (per-step algorithm)
            │                          │
            │                          ▼
            │                     Physical.t
            │                          │
            ▼                          ▼
       backend plane  ───────►   Driver walker  ──►  Relation.t * stats
       (Seed | Frame)            (spans, τ log)
    v}

    The two planes implement the same {!Driver.PLANE} signature —
    {!Exec} over seed tuple lists, {!Frame_engine} over columnar
    frames — and this module picks between them behind the small
    {!BACKEND} interface, so callers ([mjoin explain], [mjoin
    optimize], [Theorems.verify] via {!Config.backend}, the bench
    harness) never branch on the plane themselves.

    Determinism: a [Config.t] pins every execution-relevant choice
    (plane, worker domains, lowering policy, warm indexes).  Lowering
    is a pure function of (database, strategy, warm indexes); both
    planes materialize every step, so result relations and τ are
    identical across planes, policies and domain counts — the planner
    equivalence suite certifies this. *)

open Mj_relation
open Multijoin

type plane = Seed | Frame

val plane_name : plane -> string
val plane_of_string : string -> plane option
(** ["seed"] / ["frame"], case-insensitive. *)

val backend_of_plane : plane -> Cost.Cache.backend
(** The τ-oracle backend matching a data plane — what
    [Theorems.verify ~backend] and [Cost.Cache.create ~backend]
    expect. *)

module Config : sig
  type t = {
    plane : plane;  (** which data plane executes plans *)
    domains : int;  (** worker domains for parallel sections *)
    obs : Mj_obs.Obs.sink;  (** tracing/metrics sink (noop by default) *)
    algo_policy : Planner.policy;  (** how strategies lower to plans *)
    index_cache : Exec.index_cache;
        (** base-relation indexes shared by every execution under this
            config — the "existing indices" the planner may assume *)
    telemetry : string option;
        (** JSONL sidecar path for per-query telemetry records
            ([MJ_TELEMETRY] / [--telemetry]); [None] disables *)
    frame_storage : Mj_relation.Frame.storage;
        (** row-store backend for frame-plane executions
            ([MJ_FRAME_STORAGE] / [--storage]): on-heap [int array]s or
            off-heap int32 bigarrays *)
    morsel : int option;
        (** probe-morsel rows for the frame plane's parallel join
            ([MJ_MORSEL] / [--morsel]); [None] means
            [Frame.default_morsel] *)
  }

  val of_env : ?obs:Mj_obs.Obs.sink -> unit -> t
  (** The {e only} place in the library tree that reads the
      environment: [MJ_DATA_PLANE] (["frame"] selects the columnar
      plane), [MJ_DOMAINS] (worker count, clamped ≥ 1),
      [MJ_ALGO_POLICY] (["hash"], ["cost"], ["wcoj"] or ["yann"]),
      [MJ_TELEMETRY] (a
      JSONL sidecar path for per-query telemetry), [MJ_FRAME_STORAGE]
      (["heap"] or ["bigarray"] row stores for the frame plane),
      [MJ_MORSEL] (probe-morsel rows for the parallel join), and
      [MJ_FAILPOINTS] (a comma-separated list of fault-injection
      points forwarded to [Mj_failpoint.Failpoint.set_spec]).  The
      variables are read once per process (memoized) and the resolved
      values are registered with [Mj_pool.Pool.set_env_domains] and
      [Cost.Cache.set_env_backend], so legacy default-using callers
      observe the same environment without re-reading it.  Each call
      returns a fresh [index_cache].
      @raise Failure on an unknown [MJ_FAILPOINTS] name — a typo'd
      fault injection must fail loudly, not silently test nothing. *)

  val make :
    ?plane:plane ->
    ?domains:int ->
    ?policy:Planner.policy ->
    ?obs:Mj_obs.Obs.sink ->
    ?telemetry:string ->
    ?storage:Mj_relation.Frame.storage ->
    ?morsel:int ->
    unit ->
    t
  (** {!of_env} with explicit overrides — the documented precedence
      CLI flag > environment variable > built-in default, used by every
      [mjoin] subcommand and the bench harness. *)

  val backend : t -> Cost.Cache.backend
  (** [backend_of_plane c.plane]. *)
end

(** Execution statistics common to both planes, with the plane-specific
    detail attached. *)
type stats = {
  plane : plane;
  tuples_generated : int;  (** the paper's τ: sum of step output rows *)
  result_rows : int;
  per_step : (Scheme.Set.t * int) list;  (** post-order, like [Cost.step_costs] *)
  seed : Exec.stats option;  (** [Some] iff [plane = Seed] *)
  frame : Frame_engine.stats option;  (** [Some] iff [plane = Frame] *)
}

(** What a data plane looks like from above: execute an annotated plan
    under a config.  (The per-operator surface both planes implement is
    {!Driver.PLANE}; this is the coarser interface the dispatcher
    needs.) *)
module type BACKEND = sig
  val plane : plane

  val execute : Config.t -> Database.t -> Physical.t -> Relation.t * stats
end

module Seed_backend : BACKEND
module Frame_backend : BACKEND

val backend : plane -> (module BACKEND)

val lower : Config.t -> Database.t -> Strategy.t -> Physical.t
(** {!Planner.lower} under the config's policy, with the config's
    index cache as the warm-index set. *)

val execute_plan :
  ?fdb:Mj_relation.Frame.Db.t ->
  Config.t -> Database.t -> Physical.t -> Relation.t * stats
(** Run an already-lowered plan on the config's plane.  [?fdb] is a
    pre-encoded frame copy of the database ([Frame.Db.of_database]) —
    the serve daemon's warm dictionary; it is consulted only on the
    frame plane (seed executions keep their warm state in the config's
    index cache) and is never mutated, so one encoding can back
    concurrent executions. *)

val run :
  ?fdb:Mj_relation.Frame.Db.t ->
  Config.t -> Database.t -> Strategy.t -> Relation.t * stats
(** [lower] then [execute_plan] — the whole
    Config → Planner → Engine path in one call.
    @raise Invalid_argument if the strategy mentions schemes outside
    the database. *)
