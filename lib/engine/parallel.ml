open Mj_hypergraph
open Multijoin

let rec makespan_oracle oracle = function
  | Strategy.Leaf _ -> 0
  | Strategy.Join n ->
      max (makespan_oracle oracle n.left) (makespan_oracle oracle n.right)
      + oracle n.schemes

let makespan db s = makespan_oracle (Cost.cardinality_oracle db) s

(* The subset DP below mirrors Optimal's mask rewrite: sub-databases are
   Bitdb masks over the indexed universe, the memo is an int-keyed
   table, and the best join node is built once per entry after the
   partition scan (tracking only the best cost and child pair while
   scanning).  Partition enumeration orders match the historical
   Scheme.Set generators exactly, and a candidate replaces the incumbent
   only when strictly cheaper, so tie-breaking is unchanged. *)

let iter_all_partitions u m f = Bitdb.iter_binary_partitions u m f

let iter_linear_partitions u m f =
  (* Descending single schemes — the order of the historical
     [Scheme.Set.fold]-and-prepend generator. *)
  for i = Bitdb.size u - 1 downto 0 do
    let b = 1 lsl i in
    if m land b <> 0 then f (m lxor b) b
  done

let iter_cp_free_partitions u m f =
  iter_all_partitions u m (fun d1 d2 ->
      if Bitdb.is_connected u d1 && Bitdb.is_connected u d2 then f d1 d2)

let iter_linear_cp_free_partitions u m f =
  iter_linear_partitions u m (fun rest b ->
      if Bitdb.is_connected u rest then f rest b)

let optimum_makespan ?(obs = Mj_obs.Obs.noop) ?(subspace = Enumerate.All)
    ~oracle d =
  let module Obs = Mj_obs.Obs in
  let partitions_c = Obs.counter obs "opt.partitions_inspected" in
  let memo_hits_c = Obs.counter obs "opt.memo_hits" in
  let entries_c = Obs.counter obs "opt.dp_entries" in
  Obs.span obs "makespan-dp" @@ fun () ->
  let u = Bitdb.make d in
  let iter_partitions =
    match subspace with
    | Enumerate.All -> iter_all_partitions
    | Enumerate.Linear -> iter_linear_partitions
    | Enumerate.Cp_free -> iter_cp_free_partitions
    | Enumerate.Linear_cp_free -> iter_linear_cp_free_partitions
  in
  (* Makespan is compositional per subtree (max of children + step), so
     the same subset DP applies with the combining rule swapped. *)
  let memo : (int, Optimal.result option) Hashtbl.t = Hashtbl.create 64 in
  let rec best m =
    match Hashtbl.find_opt memo m with
    | Some r ->
        Obs.incr memo_hits_c 1;
        r
    | None ->
        Obs.incr entries_c 1;
        let r =
          if m = 0 then invalid_arg "Parallel: empty sub-database"
          else if Bitdb.popcount m = 1 then
            Some
              {
                Optimal.strategy = Strategy.leaf (Bitdb.scheme u (Bitdb.bit_index m));
                cost = 0;
              }
          else begin
            let here = oracle (Bitdb.set_of_mask u m) in
            let best_cost = ref max_int in
            let best_pair = ref None in
            iter_partitions u m (fun m1 m2 ->
                Obs.incr partitions_c 1;
                match best m1, best m2 with
                | Some r1, Some r2 ->
                    let c = max r1.Optimal.cost r2.Optimal.cost + here in
                    if c < !best_cost || Option.is_none !best_pair then begin
                      best_cost := c;
                      best_pair := Some (r1, r2)
                    end
                | _ -> ());
            Option.map
              (fun ((r1 : Optimal.result), (r2 : Optimal.result)) ->
                {
                  Optimal.strategy = Strategy.join r1.strategy r2.strategy;
                  cost = !best_cost;
                })
              !best_pair
          end
        in
        Hashtbl.add memo m r;
        r
  in
  best (Bitdb.full u)
