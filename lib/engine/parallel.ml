open Mj_relation
open Mj_hypergraph
open Multijoin

let rec makespan_oracle oracle = function
  | Strategy.Leaf _ -> 0
  | Strategy.Join n ->
      max (makespan_oracle oracle n.left) (makespan_oracle oracle n.right)
      + oracle n.schemes

let makespan db s = makespan_oracle (Cost.cardinality_oracle db) s

let key d = String.concat "|" (List.map Scheme.to_string (Scheme.Set.elements d))

let better a b =
  match a, b with
  | None, x | x, None -> x
  | Some (r1 : Optimal.result), Some r2 -> if r1.cost <= r2.cost then a else b

let optimum_makespan ?(obs = Mj_obs.Obs.noop) ?(subspace = Enumerate.All)
    ~oracle d =
  let module Obs = Mj_obs.Obs in
  let partitions_c = Obs.counter obs "opt.partitions_inspected" in
  let memo_hits_c = Obs.counter obs "opt.memo_hits" in
  let entries_c = Obs.counter obs "opt.dp_entries" in
  Obs.span obs "makespan-dp" @@ fun () ->
  let partitions =
    match subspace with
    | Enumerate.All -> Hypergraph.binary_partitions
    | Enumerate.Linear ->
        fun d' ->
          Scheme.Set.fold
            (fun s acc -> (Scheme.Set.remove s d', Scheme.Set.singleton s) :: acc)
            d' []
    | Enumerate.Cp_free ->
        fun d' ->
          List.filter
            (fun (d1, d2) -> Hypergraph.connected d1 && Hypergraph.connected d2)
            (Hypergraph.binary_partitions d')
    | Enumerate.Linear_cp_free ->
        fun d' ->
          Scheme.Set.fold
            (fun s acc ->
              let rest = Scheme.Set.remove s d' in
              if Hypergraph.connected rest then
                (rest, Scheme.Set.singleton s) :: acc
              else acc)
            d' []
  in
  (* Makespan is compositional per subtree (max of children + step), so
     the same subset DP applies with the combining rule swapped. *)
  let memo = Hashtbl.create 64 in
  let rec best d' =
    match Hashtbl.find_opt memo (key d') with
    | Some r ->
        Obs.incr memo_hits_c 1;
        r
    | None ->
        Obs.incr entries_c 1;
        let r =
          match Scheme.Set.elements d' with
          | [] -> invalid_arg "Parallel: empty sub-database"
          | [ s ] -> Some { Optimal.strategy = Strategy.leaf s; cost = 0 }
          | _ ->
              let here = oracle d' in
              List.fold_left
                (fun acc (d1, d2) ->
                  Obs.incr partitions_c 1;
                  match best d1, best d2 with
                  | Some r1, Some r2 ->
                      better acc
                        (Some
                           {
                             Optimal.strategy =
                               Strategy.join r1.Optimal.strategy
                                 r2.Optimal.strategy;
                             cost = max r1.Optimal.cost r2.Optimal.cost + here;
                           })
                  | _ -> acc)
                None (partitions d')
        in
        Hashtbl.add memo (key d') r;
        r
  in
  best d
