open Mj_relation
module Obs = Mj_obs.Obs
module Json = Mj_obs.Json

module type PLANE = sig
  val name : string
  val root_span : string

  type item
  type ctx

  val scan : ctx -> Scheme.t -> item

  val join :
    ctx -> Physical.algorithm -> common:Attr.Set.t -> item -> item -> item

  val index_join :
    ctx -> common:Attr.Set.t -> outer:item -> inner:Scheme.t -> item option

  val generic_join :
    ctx -> schemes:Scheme.t list -> order:Attr.t list -> item

  val semijoin : ctx -> common:Attr.Set.t -> item -> item -> item

  val ranked :
    ctx -> order:Attr.t list -> k:int -> (Scheme.t * item) list -> item

  val cardinality : item -> int
  val note_step : ctx -> int -> unit
  val algo_label : Physical.algorithm -> string
  val to_relation : ctx -> Scheme.t -> item -> Relation.t
end

type step_log = {
  tuples_generated : int;
  per_step : (Scheme.Set.t * int) list;
}

let scheme_key d = Format.asprintf "%a" Scheme.Set.pp d

module Make (P : PLANE) = struct
  (* The walker is the part both planes used to duplicate: the span
     shapes (a "scan" per leaf, a "join" per step, attributes [scheme],
     [rows] and [algo]), the per-step τ accounting, and the
     index-nested-loop fast path that reaches the inner base relation
     through its index instead of executing the scan.  A plane that has
     no base-relation indexes answers [None] from [index_join] and the
     step degrades to its ordinary join. *)
  let execute ~obs ctx plan =
    let generated = ref 0 in
    let steps = ref [] in
    let rec run = function
      | Physical.Scan s ->
          Obs.span obs "scan" (fun () ->
              let it = P.scan ctx s in
              if Obs.enabled obs then begin
                Obs.set_attr obs "scheme"
                  (Json.str (scheme_key (Scheme.Set.singleton s)));
                Obs.set_attr obs "rows" (Json.int (P.cardinality it))
              end;
              (s, it))
      | Physical.Join (algo, l, r) ->
          Obs.span obs "join" (fun () ->
              let node_schemes =
                Scheme.Set.union (Physical.schemes l) (Physical.schemes r)
              in
              if Obs.enabled obs then begin
                Obs.set_attr obs "algo" (Json.str (P.algo_label algo));
                Obs.set_attr obs "scheme" (Json.str (scheme_key node_schemes))
              end;
              let finish out_scheme it =
                let n = P.cardinality it in
                generated := !generated + n;
                steps := (node_schemes, n) :: !steps;
                P.note_step ctx n;
                if Obs.enabled obs then Obs.set_attr obs "rows" (Json.int n);
                (out_scheme, it)
              in
              let ordinary ls left =
                let rs, right = run r in
                let common = Attr.Set.inter ls rs in
                finish (Attr.Set.union ls rs) (P.join ctx algo ~common left right)
              in
              let ls, left = run l in
              match (algo, r) with
              | Physical.Index_nested_loop, Physical.Scan inner -> (
                  let common = Attr.Set.inter ls inner in
                  match P.index_join ctx ~common ~outer:left ~inner with
                  | Some it -> finish (Attr.Set.union ls inner) it
                  | None -> ordinary ls left)
              | _ -> ordinary ls left)
      | Physical.Generic_join (ss, order) ->
          (* One n-ary step: the whole sub-hypergraph is joined in a
             single worst-case-optimal pass, so the node contributes
             exactly one τ entry — its output cardinality — where a
             binary lowering would contribute one per internal step. *)
          Obs.span obs "join" (fun () ->
              let node_schemes = Scheme.Set.of_list ss in
              let out_scheme =
                List.fold_left Attr.Set.union Attr.Set.empty ss
              in
              if Obs.enabled obs then begin
                Obs.set_attr obs "algo" (Json.str "wcoj");
                Obs.set_attr obs "scheme" (Json.str (scheme_key node_schemes));
                Obs.set_attr obs "order"
                  (Json.str
                     (String.concat "," (List.map Attr.to_string order)))
              end;
              let it = P.generic_join ctx ~schemes:ss ~order in
              let n = P.cardinality it in
              generated := !generated + n;
              steps := (node_schemes, n) :: !steps;
              P.note_step ctx n;
              if Obs.enabled obs then Obs.set_attr obs "rows" (Json.int n);
              (out_scheme, it))
      | Physical.Semijoin_program rt -> yannakakis rt None
      | Physical.Ranked_enumerate (rt, k) -> yannakakis rt (Some k)
    (* Yannakakis over a rooted join tree: scan every node, sweep
       semijoins leaf-to-root then root-to-leaf (each a "semijoin" span
       with [scheme]/[rows]/[dir] attributes but NO τ entry — semijoins
       generate no tuples under the paper's measure), then either join
       the reduced relations root-outward (one "join" span and one τ
       entry per step, like any binary plan) or hand the whole reduced
       tree to the plane's ranked enumerator (one "topk" span, one τ
       entry: the ≤ k rows it streamed out). *)
    and yannakakis (rt : Mj_hypergraph.Jointree.rooted) limit =
      let order = Mj_hypergraph.Jointree.join_order rt in
      let scan_node s =
        Obs.span obs "scan" (fun () ->
            let it = P.scan ctx s in
            if Obs.enabled obs then begin
              Obs.set_attr obs "scheme"
                (Json.str (scheme_key (Scheme.Set.singleton s)));
              Obs.set_attr obs "rows" (Json.int (P.cardinality it))
            end;
            it)
      in
      let items = List.map (fun s -> (s, ref (scan_node s))) order in
      let item_of s = snd (List.find (fun (s', _) -> Scheme.equal s s') items) in
      let semijoin_step dir target source =
        let t = item_of target and sc = item_of source in
        Obs.span obs "semijoin" (fun () ->
            let common = Attr.Set.inter target source in
            t := P.semijoin ctx ~common !t !sc;
            if Obs.enabled obs then begin
              Obs.set_attr obs "scheme"
                (Json.str (scheme_key (Scheme.Set.singleton target)));
              Obs.set_attr obs "dir" (Json.str dir);
              Obs.set_attr obs "rows" (Json.int (P.cardinality !t))
            end)
      in
      List.iter
        (fun (ear, parent) -> semijoin_step "up" parent ear)
        rt.Mj_hypergraph.Jointree.elims;
      List.iter
        (fun (ear, parent) -> semijoin_step "down" ear parent)
        (List.rev rt.Mj_hypergraph.Jointree.elims);
      let out_scheme = List.fold_left Attr.Set.union Attr.Set.empty order in
      match limit with
      | None ->
          let join_step (acc_set, acc_scheme, acc) s =
            Obs.span obs "join" (fun () ->
                let node_schemes = Scheme.Set.add s acc_set in
                if Obs.enabled obs then begin
                  Obs.set_attr obs "algo"
                    (Json.str (P.algo_label Physical.Hash_join));
                  Obs.set_attr obs "scheme"
                    (Json.str (scheme_key node_schemes))
                end;
                let common = Attr.Set.inter acc_scheme s in
                let it = P.join ctx Physical.Hash_join ~common acc !(item_of s) in
                let n = P.cardinality it in
                generated := !generated + n;
                steps := (node_schemes, n) :: !steps;
                P.note_step ctx n;
                if Obs.enabled obs then Obs.set_attr obs "rows" (Json.int n);
                (node_schemes, Attr.Set.union acc_scheme s, it))
          in
          let root = rt.Mj_hypergraph.Jointree.root in
          let _, _, it =
            List.fold_left join_step
              (Scheme.Set.singleton root, root, !(item_of root))
              (List.tl order)
          in
          (out_scheme, it)
      | Some k ->
          Obs.span obs "topk" (fun () ->
              let node_schemes = Scheme.Set.of_list order in
              let it =
                P.ranked ctx
                  ~order:(Attr.Set.elements out_scheme)
                  ~k
                  (List.map (fun (s, r) -> (s, !r)) items)
              in
              let n = P.cardinality it in
              generated := !generated + n;
              steps := (node_schemes, n) :: !steps;
              P.note_step ctx n;
              if Obs.enabled obs then begin
                Obs.set_attr obs "scheme" (Json.str (scheme_key node_schemes));
                Obs.set_attr obs "k" (Json.int k);
                Obs.set_attr obs "rows" (Json.int n)
              end;
              (out_scheme, it))
    in
    let out_scheme, item = Obs.span obs P.root_span (fun () -> run plan) in
    let result = P.to_relation ctx out_scheme item in
    (result, { tuples_generated = !generated; per_step = List.rev !steps })
end
