open Mj_relation
module Obs = Mj_obs.Obs
module Json = Mj_obs.Json

module type PLANE = sig
  val name : string
  val root_span : string

  type item
  type ctx

  val scan : ctx -> Scheme.t -> item

  val join :
    ctx -> Physical.algorithm -> common:Attr.Set.t -> item -> item -> item

  val index_join :
    ctx -> common:Attr.Set.t -> outer:item -> inner:Scheme.t -> item option

  val generic_join :
    ctx -> schemes:Scheme.t list -> order:Attr.t list -> item

  val cardinality : item -> int
  val note_step : ctx -> int -> unit
  val algo_label : Physical.algorithm -> string
  val to_relation : ctx -> Scheme.t -> item -> Relation.t
end

type step_log = {
  tuples_generated : int;
  per_step : (Scheme.Set.t * int) list;
}

let scheme_key d = Format.asprintf "%a" Scheme.Set.pp d

module Make (P : PLANE) = struct
  (* The walker is the part both planes used to duplicate: the span
     shapes (a "scan" per leaf, a "join" per step, attributes [scheme],
     [rows] and [algo]), the per-step τ accounting, and the
     index-nested-loop fast path that reaches the inner base relation
     through its index instead of executing the scan.  A plane that has
     no base-relation indexes answers [None] from [index_join] and the
     step degrades to its ordinary join. *)
  let execute ~obs ctx plan =
    let generated = ref 0 in
    let steps = ref [] in
    let rec run = function
      | Physical.Scan s ->
          Obs.span obs "scan" (fun () ->
              let it = P.scan ctx s in
              if Obs.enabled obs then begin
                Obs.set_attr obs "scheme"
                  (Json.str (scheme_key (Scheme.Set.singleton s)));
                Obs.set_attr obs "rows" (Json.int (P.cardinality it))
              end;
              (s, it))
      | Physical.Join (algo, l, r) ->
          Obs.span obs "join" (fun () ->
              let node_schemes =
                Scheme.Set.union (Physical.schemes l) (Physical.schemes r)
              in
              if Obs.enabled obs then begin
                Obs.set_attr obs "algo" (Json.str (P.algo_label algo));
                Obs.set_attr obs "scheme" (Json.str (scheme_key node_schemes))
              end;
              let finish out_scheme it =
                let n = P.cardinality it in
                generated := !generated + n;
                steps := (node_schemes, n) :: !steps;
                P.note_step ctx n;
                if Obs.enabled obs then Obs.set_attr obs "rows" (Json.int n);
                (out_scheme, it)
              in
              let ordinary ls left =
                let rs, right = run r in
                let common = Attr.Set.inter ls rs in
                finish (Attr.Set.union ls rs) (P.join ctx algo ~common left right)
              in
              let ls, left = run l in
              match (algo, r) with
              | Physical.Index_nested_loop, Physical.Scan inner -> (
                  let common = Attr.Set.inter ls inner in
                  match P.index_join ctx ~common ~outer:left ~inner with
                  | Some it -> finish (Attr.Set.union ls inner) it
                  | None -> ordinary ls left)
              | _ -> ordinary ls left)
      | Physical.Generic_join (ss, order) ->
          (* One n-ary step: the whole sub-hypergraph is joined in a
             single worst-case-optimal pass, so the node contributes
             exactly one τ entry — its output cardinality — where a
             binary lowering would contribute one per internal step. *)
          Obs.span obs "join" (fun () ->
              let node_schemes = Scheme.Set.of_list ss in
              let out_scheme =
                List.fold_left Attr.Set.union Attr.Set.empty ss
              in
              if Obs.enabled obs then begin
                Obs.set_attr obs "algo" (Json.str "wcoj");
                Obs.set_attr obs "scheme" (Json.str (scheme_key node_schemes));
                Obs.set_attr obs "order"
                  (Json.str
                     (String.concat "," (List.map Attr.to_string order)))
              end;
              let it = P.generic_join ctx ~schemes:ss ~order in
              let n = P.cardinality it in
              generated := !generated + n;
              steps := (node_schemes, n) :: !steps;
              P.note_step ctx n;
              if Obs.enabled obs then Obs.set_attr obs "rows" (Json.int n);
              (out_scheme, it))
    in
    let out_scheme, item = Obs.span obs P.root_span (fun () -> run plan) in
    let result = P.to_relation ctx out_scheme item in
    (result, { tuples_generated = !generated; per_step = List.rev !steps })
end
