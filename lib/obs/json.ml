type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let str s = Str s
let int n = Num (float_of_int n)
let float f = Num f
let bool b = Bool b

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f ->
      if not (Float.is_finite f) then Buffer.add_string buf "null"
      else if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.0f" f)
      else Buffer.add_string buf (Printf.sprintf "%.12g" f)
  | Str s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing: a small recursive-descent reader, enough to round-trip      *)
(* everything the exporters emit (and ordinary JSON from outside).      *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> parse_error "expected '%c' at %d, found '%c'" ch c.pos x
  | None -> parse_error "expected '%c' at %d, found end of input" ch c.pos

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else parse_error "invalid literal at %d" c.pos

let utf8_of_code buf code =
  (* Minimal UTF-8 encoder for BMP + supplementary code points. *)
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let hex4 c =
  if c.pos + 4 > String.length c.src then parse_error "truncated \\u escape";
  let s = String.sub c.src c.pos 4 in
  c.pos <- c.pos + 4;
  try int_of_string ("0x" ^ s)
  with Failure _ -> parse_error "bad \\u escape %s" s

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> parse_error "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some '"' -> advance c; Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance c; Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance c; Buffer.add_char buf '/'; go ()
        | Some 'b' -> advance c; Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance c; Buffer.add_char buf '\012'; go ()
        | Some 'n' -> advance c; Buffer.add_char buf '\n'; go ()
        | Some 'r' -> advance c; Buffer.add_char buf '\r'; go ()
        | Some 't' -> advance c; Buffer.add_char buf '\t'; go ()
        | Some 'u' ->
            advance c;
            let code = hex4 c in
            let code =
              (* Combine a surrogate pair when present. *)
              if code >= 0xD800 && code <= 0xDBFF
                 && c.pos + 6 <= String.length c.src
                 && c.src.[c.pos] = '\\' && c.src.[c.pos + 1] = 'u'
              then begin
                c.pos <- c.pos + 2;
                let low = hex4 c in
                0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00)
              end
              else code
            in
            utf8_of_code buf code;
            go ()
        | _ -> parse_error "bad escape at %d" c.pos)
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let numeric = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch -> numeric ch | None -> false) do
    advance c
  done;
  let s = String.sub c.src start (c.pos - start) in
  match float_of_string_opt s with
  | Some f -> Num f
  | None -> parse_error "bad number %S at %d" s start

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> parse_error "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> Str (parse_string c)
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin advance c; Arr [] end
      else begin
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; items (v :: acc)
          | Some ']' -> advance c; List.rev (v :: acc)
          | _ -> parse_error "expected ',' or ']' at %d" c.pos
        in
        Arr (items [])
      end
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin advance c; Obj [] end
      else begin
        let field () =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; fields (kv :: acc)
          | Some '}' -> advance c; List.rev (kv :: acc)
          | _ -> parse_error "expected ',' or '}' at %d" c.pos
        in
        Obj (fields [])
      end
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> parse_error "unexpected character '%c' at %d" ch c.pos

let of_string s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos <> String.length s then
        invalid_arg
          (Printf.sprintf "Json.of_string: trailing garbage at %d" c.pos)
      else v
  | exception Parse_error m -> invalid_arg ("Json.of_string: " ^ m)

let of_string_opt s = try Some (of_string s) with Invalid_argument _ -> None

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
