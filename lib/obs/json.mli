(** A minimal JSON value type with a printer and a parser.

    [Mj_obs] hand-rolls JSON rather than depending on a JSON package:
    the exporters only need object/array/string/number emission, and the
    test suite needs to re-parse what was written to certify that every
    exported line is valid JSON.  Strings are escaped per RFC 8259
    (control characters as [\uXXXX]); the parser accepts arbitrary
    standard JSON including surrogate-pair escapes. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** {1 Constructors} *)

val str : string -> t
val int : int -> t
val float : float -> t
val bool : bool -> t

(** {1 Printing} *)

val to_string : t -> string
(** Compact (single-line) rendering.  Integral [Num] values print
    without a decimal point; non-finite numbers print as [null] so the
    output is always valid JSON. *)

val to_buffer : Buffer.t -> t -> unit

(** {1 Parsing} *)

val of_string : string -> t
(** @raise Invalid_argument on malformed input or trailing garbage. *)

val of_string_opt : string -> t option

(** {1 Access} *)

val member : string -> t -> t option
(** [member k (Obj fields)] is the value bound to [k]; [None] on other
    constructors or a missing key. *)
