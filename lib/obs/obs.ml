(* Unified tracing and metrics.

   The design pivots on one constraint: the zero-instrumentation path
   must cost nothing.  A sink is either [Noop] — every operation is a
   single pattern match, counters are plain mutable records bumped in
   place — or [Active], which accumulates a span tree and a metric
   registry for the exporters.  Hot loops grab counter handles once and
   mutate a record field per event, exactly what the engine's old
   ad-hoc [counters] record did.

   Histograms are log-bucketed with a fixed global layout (16 linear
   sub-buckets per power of two), so any two histograms merge exactly by
   bucket-wise addition: merging per-domain shards is associative and
   commutative, and quantiles of a merge equal quantiles of the shards
   merged in any grouping.  Relative quantile error is bounded by the
   sub-bucket width, 1/16 ≈ 6.25%. *)

(* ------------------------------------------------------------------ *)
(* Metrics: named counters and histograms in a registry                 *)
(* ------------------------------------------------------------------ *)

type counter = { cname : string; mutable value : int }

(* Bucket layout: index 0 holds v <= 0 (and subnormal underflow), the
   last index holds overflow beyond 2^max_exp; between them, exponent
   slot s covers [2^s, 2^(s+1)) split into 16 linear sub-buckets.  The
   layout is a compile-time constant — never serialized — so merges
   across sinks and domains are always bucket-for-bucket. *)
let sub_count = 16
let min_exp = -40 (* 2^-40 s ≈ 0.9 ps: below any duration we time *)
let max_exp = 50 (* 2^50 ≈ 1.1e15: above any count we track *)
let nbuckets = ((max_exp - min_exp) * sub_count) + 2
let overflow_bucket = nbuckets - 1

let bucket_of_value v =
  if not (v > 0.0) then 0 (* negatives, zero and NaN share bucket 0 *)
  else
    let m, e = Float.frexp v in
    (* v = m * 2^e with m in [0.5, 1), i.e. v in [2^(e-1), 2^e). *)
    let s = e - 1 in
    if s < min_exp then 0
    else if s >= max_exp then overflow_bucket
    else
      let sub = int_of_float ((m -. 0.5) *. 2.0 *. float_of_int sub_count) in
      let sub = if sub < 0 then 0 else if sub >= sub_count then sub_count - 1 else sub in
      1 + ((s - min_exp) * sub_count) + sub

let bucket_upper idx =
  if idx = 0 then 0.0
  else if idx >= overflow_bucket then infinity
  else
    let i = idx - 1 in
    let s = (i / sub_count) + min_exp in
    let sub = i mod sub_count in
    Float.ldexp (0.5 +. (float_of_int (sub + 1) /. (2.0 *. float_of_int sub_count))) (s + 1)

type histogram = {
  hname : string;
  mutable hcount : int;
  mutable hsum : float;
  mutable hmin : float;
  mutable hmax : float;
  buckets : int array; (* fixed layout, length [nbuckets] *)
}

type histo_summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
}

type registry = {
  ctbl : (string, counter) Hashtbl.t;
  mutable crev : counter list; (* reverse registration order *)
  htbl : (string, histogram) Hashtbl.t;
  mutable hrev : histogram list;
}

let registry () =
  { ctbl = Hashtbl.create 16; crev = []; htbl = Hashtbl.create 8; hrev = [] }

let reg_counter reg name =
  match Hashtbl.find_opt reg.ctbl name with
  | Some c -> c
  | None ->
      let c = { cname = name; value = 0 } in
      Hashtbl.add reg.ctbl name c;
      reg.crev <- c :: reg.crev;
      c

let reg_histogram reg name =
  match Hashtbl.find_opt reg.htbl name with
  | Some h -> h
  | None ->
      let h =
        { hname = name; hcount = 0; hsum = 0.0; hmin = infinity;
          hmax = neg_infinity; buckets = Array.make nbuckets 0 }
      in
      Hashtbl.add reg.htbl name h;
      reg.hrev <- h :: reg.hrev;
      h

let incr c n = c.value <- c.value + n
let record_max c n = if n > c.value then c.value <- n
let value c = c.value
let counter_name c = c.cname

let observe h v =
  h.hcount <- h.hcount + 1;
  h.hsum <- h.hsum +. v;
  if v < h.hmin then h.hmin <- v;
  if v > h.hmax then h.hmax <- v;
  let b = bucket_of_value v in
  h.buckets.(b) <- h.buckets.(b) + 1

let quantile h q =
  if h.hcount = 0 then 0.0
  else begin
    (* Nearest-rank over cumulative bucket counts, then report the
       bucket's upper bound clamped to the observed [hmin, hmax] — so a
       single-valued histogram reports that value exactly and every
       quantile stays within one sub-bucket (≤ 6.25%) of the true one. *)
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int h.hcount)) in
      if r < 1 then 1 else if r > h.hcount then h.hcount else r
    in
    let idx = ref overflow_bucket in
    let cum = ref 0 in
    (try
       for i = 0 to nbuckets - 1 do
         cum := !cum + h.buckets.(i);
         if !cum >= rank then begin
           idx := i;
           raise Exit
         end
       done
     with Exit -> ());
    Float.min (Float.max (bucket_upper !idx) h.hmin) h.hmax
  end

let summary h =
  {
    count = h.hcount;
    sum = h.hsum;
    min = h.hmin;
    max = h.hmax;
    p50 = quantile h 0.50;
    p90 = quantile h 0.90;
    p95 = quantile h 0.95;
    p99 = quantile h 0.99;
  }

let histo_merge_into dst src =
  dst.hcount <- dst.hcount + src.hcount;
  dst.hsum <- dst.hsum +. src.hsum;
  if src.hmin < dst.hmin then dst.hmin <- src.hmin;
  if src.hmax > dst.hmax then dst.hmax <- src.hmax;
  for i = 0 to nbuckets - 1 do
    dst.buckets.(i) <- dst.buckets.(i) + src.buckets.(i)
  done

let counter_list reg = List.rev_map (fun c -> (c.cname, c.value)) reg.crev
let histogram_list reg = List.rev_map (fun h -> (h.hname, summary h)) reg.hrev

(* ------------------------------------------------------------------ *)
(* Clocks and GC accounting                                             *)
(* ------------------------------------------------------------------ *)

(* CLOCK_MONOTONIC via the bechamel C stub — [Unix.gettimeofday] jumps
   under NTP slew and breaks span durations; this one cannot. *)
let monotonic_time () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

type gc_mark = {
  g_minor : float;
  g_promoted : float;
  g_major : float;
  g_cminor : int;
  g_cmajor : int;
}

let gc_mark () =
  let s = Gc.quick_stat () in
  {
    (* [quick_stat]'s [minor_words] is only refreshed at collection
       boundaries on OCaml 5; [Gc.minor_words] reads the live
       allocation pointer, so short spans still see their words. *)
    g_minor = Gc.minor_words ();
    g_promoted = s.Gc.promoted_words;
    g_major = s.Gc.major_words;
    g_cminor = s.Gc.minor_collections;
    g_cmajor = s.Gc.major_collections;
  }

let gc_delta a b =
  {
    g_minor = b.g_minor -. a.g_minor;
    g_promoted = b.g_promoted -. a.g_promoted;
    g_major = b.g_major -. a.g_major;
    g_cminor = b.g_cminor - a.g_cminor;
    g_cmajor = b.g_cmajor - a.g_cmajor;
  }

let words f = int_of_float f

let gc_attrs d =
  [
    ("gc.minor_words", Json.int (words d.g_minor));
    ("gc.promoted_words", Json.int (words d.g_promoted));
    ("gc.major_words", Json.int (words d.g_major));
    ("gc.minor_collections", Json.int d.g_cminor);
    ("gc.major_collections", Json.int d.g_cmajor);
  ]

(* ------------------------------------------------------------------ *)
(* Spans                                                                *)
(* ------------------------------------------------------------------ *)

type span_tree = {
  name : string;
  start : float; (* seconds since the sink was created *)
  duration : float;
  attrs : (string * Json.t) list;
  children : span_tree list;
}

(* Open spans are accumulated mutably and normalized by [trace]. *)
type open_span = {
  oname : string;
  ostart : float;
  mutable ostop : float;
  mutable oattrs : (string * Json.t) list; (* reverse order *)
  mutable okids : open_span list;          (* reverse order *)
  ogc : gc_mark option;
}

type active = {
  clock : unit -> float;
  epoch : float;
  gc : bool;
  mutable lane : int; (* worker lane set by Pool.run_traced; -1 = none *)
  mutable stack : open_span list; (* innermost first *)
  mutable roots : open_span list; (* reverse completion order *)
  reg : registry;
}

type sink = Noop | Active of active

let noop = Noop

let make ?(clock = monotonic_time) ?(gc = true) () =
  Active
    { clock; epoch = clock (); gc; lane = -1; stack = []; roots = [];
      reg = registry () }

let enabled = function Noop -> false | Active _ -> true

let span t ?(attrs = []) name f =
  match t with
  | Noop -> f ()
  | Active a ->
      let s =
        { oname = name; ostart = a.clock () -. a.epoch; ostop = nan;
          oattrs = List.rev attrs; okids = [];
          ogc = (if a.gc then Some (gc_mark ()) else None) }
      in
      a.stack <- s :: a.stack;
      let finish () =
        s.ostop <- a.clock () -. a.epoch;
        (match s.ogc with
        | None -> ()
        | Some m ->
            let d = gc_delta m (gc_mark ()) in
            s.oattrs <- List.rev_append (gc_attrs d) s.oattrs;
            (* Fold root-span deltas — they cover the whole traced
               region — into sink counters, once, at root close. *)
            if (match a.stack with [ top ] -> top == s | _ -> false) then begin
              incr (reg_counter a.reg "gc.minor_words") (words d.g_minor);
              incr (reg_counter a.reg "gc.promoted_words") (words d.g_promoted);
              incr (reg_counter a.reg "gc.major_words") (words d.g_major);
              incr (reg_counter a.reg "gc.minor_collections") d.g_cminor;
              incr (reg_counter a.reg "gc.major_collections") d.g_cmajor
            end);
        observe
          (reg_histogram a.reg ("span." ^ name ^ ".ms"))
          (Float.max 0.0 (s.ostop -. s.ostart) *. 1e3);
        match a.stack with
        | top :: rest when top == s -> (
            a.stack <- rest;
            match rest with
            | parent :: _ -> parent.okids <- s :: parent.okids
            | [] -> a.roots <- s :: a.roots)
        | _ ->
            (* Unbalanced nesting can only happen if a callee captured
               the sink and closed spans out of order; drop to the
               matching frame rather than corrupting the tree. *)
            a.stack <- List.filter (fun o -> not (o == s)) a.stack;
            if a.stack = [] then a.roots <- s :: a.roots
      in
      (match f () with
      | v ->
          finish ();
          v
      | exception e ->
          finish ();
          raise e)

let set_attr t key v =
  match t with
  | Noop -> ()
  | Active a -> (
      match a.stack with
      | s :: _ -> s.oattrs <- (key, v) :: s.oattrs
      | [] -> ())

let event t ?(attrs = []) name =
  match t with
  | Noop -> ()
  | Active a -> (
      let now = a.clock () -. a.epoch in
      let s =
        { oname = name; ostart = now; ostop = now; oattrs = List.rev attrs;
          okids = []; ogc = None }
      in
      match a.stack with
      | parent :: _ -> parent.okids <- s :: parent.okids
      | [] -> a.roots <- s :: a.roots)

(* Sink-level metrics.  [counter] hands hot loops a handle: for a noop
   sink the handle is one shared dummy record — bumped freely, never
   read, and (unlike a fresh record per call) allocation-free. *)

let noop_counter = { cname = "noop"; value = 0 }

let noop_histogram =
  { hname = "noop"; hcount = 0; hsum = 0.0; hmin = infinity;
    hmax = neg_infinity; buckets = Array.make nbuckets 0 }

let counter t name =
  match t with Noop -> noop_counter | Active a -> reg_counter a.reg name

let histogram t name =
  match t with Noop -> noop_histogram | Active a -> reg_histogram a.reg name

let add t name n =
  match t with Noop -> () | Active a -> incr (reg_counter a.reg name) n

let merge_registry t reg =
  match t with
  | Noop -> ()
  | Active a ->
      List.iter
        (fun c -> incr (reg_counter a.reg c.cname) c.value)
        (List.rev reg.crev);
      List.iter
        (fun h -> histo_merge_into (reg_histogram a.reg h.hname) h)
        (List.rev reg.hrev)

let counters = function Noop -> [] | Active a -> counter_list a.reg
let histograms = function Noop -> [] | Active a -> histogram_list a.reg

let histogram_summary t name =
  match t with
  | Noop -> None
  | Active a ->
      Option.map (fun h -> summary h) (Hashtbl.find_opt a.reg.htbl name)

(* ------------------------------------------------------------------ *)
(* Per-domain child sinks                                               *)
(* ------------------------------------------------------------------ *)

let fork t =
  match t with
  | Noop -> Noop
  | Active a ->
      (* Same epoch and clock source, so child timestamps land on the
         parent's timeline; fresh span state and registry, so a worker
         domain never touches parent mutables. *)
      Active
        { clock = a.clock; epoch = a.epoch; gc = a.gc; lane = -1;
          stack = []; roots = []; reg = registry () }

let set_lane t l = match t with Noop -> () | Active a -> a.lane <- l
let lane t = match t with Noop -> -1 | Active a -> a.lane

let merge_child t child =
  match (t, child) with
  | Noop, _ | _, Noop -> ()
  | Active p, Active c ->
      let roots = List.rev c.roots in
      if c.lane >= 0 then
        List.iter
          (fun r -> r.oattrs <- ("domain", Json.int c.lane) :: r.oattrs)
          roots;
      (match p.stack with
      | s :: _ -> List.iter (fun r -> s.okids <- r :: s.okids) roots
      | [] -> List.iter (fun r -> p.roots <- r :: p.roots) roots);
      merge_registry t c.reg

let rec normalize o =
  {
    name = o.oname;
    start = o.ostart;
    duration =
      (if Float.is_nan o.ostop then 0.0 else Float.max 0.0 (o.ostop -. o.ostart));
    attrs = List.rev o.oattrs;
    children = List.rev_map normalize o.okids;
  }

let trace = function
  | Noop -> []
  | Active a ->
      (* Completed roots in start order; any span still open is
         reported as-is with a zero duration. *)
      let open_roots =
        match List.rev a.stack with outermost :: _ -> [ outermost ] | [] -> []
      in
      List.rev_map normalize a.roots @ List.map normalize open_roots
