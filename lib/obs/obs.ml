(* Unified tracing and metrics.

   The design pivots on one constraint: the zero-instrumentation path
   must cost nothing.  A sink is either [Noop] — every operation is a
   single pattern match, counters are plain mutable records bumped in
   place — or [Active], which accumulates a span tree and a metric
   registry for the exporters.  Hot loops grab counter handles once and
   mutate a record field per event, exactly what the engine's old
   ad-hoc [counters] record did. *)

(* ------------------------------------------------------------------ *)
(* Metrics: named counters and histograms in a registry                 *)
(* ------------------------------------------------------------------ *)

type counter = { cname : string; mutable value : int }

type histogram = {
  hname : string;
  mutable hcount : int;
  mutable hsum : float;
  mutable hmin : float;
  mutable hmax : float;
}

type histo_summary = { count : int; sum : float; min : float; max : float }

type registry = {
  ctbl : (string, counter) Hashtbl.t;
  mutable crev : counter list; (* reverse registration order *)
  htbl : (string, histogram) Hashtbl.t;
  mutable hrev : histogram list;
}

let registry () =
  { ctbl = Hashtbl.create 16; crev = []; htbl = Hashtbl.create 8; hrev = [] }

let reg_counter reg name =
  match Hashtbl.find_opt reg.ctbl name with
  | Some c -> c
  | None ->
      let c = { cname = name; value = 0 } in
      Hashtbl.add reg.ctbl name c;
      reg.crev <- c :: reg.crev;
      c

let reg_histogram reg name =
  match Hashtbl.find_opt reg.htbl name with
  | Some h -> h
  | None ->
      let h =
        { hname = name; hcount = 0; hsum = 0.0; hmin = infinity;
          hmax = neg_infinity }
      in
      Hashtbl.add reg.htbl name h;
      reg.hrev <- h :: reg.hrev;
      h

let incr c n = c.value <- c.value + n
let record_max c n = if n > c.value then c.value <- n
let value c = c.value
let counter_name c = c.cname

let observe h v =
  h.hcount <- h.hcount + 1;
  h.hsum <- h.hsum +. v;
  if v < h.hmin then h.hmin <- v;
  if v > h.hmax then h.hmax <- v

let summary h = { count = h.hcount; sum = h.hsum; min = h.hmin; max = h.hmax }

let counter_list reg =
  List.rev_map (fun c -> (c.cname, c.value)) reg.crev

let histogram_list reg =
  List.rev_map (fun h -> (h.hname, summary h)) reg.hrev

(* ------------------------------------------------------------------ *)
(* Spans                                                                *)
(* ------------------------------------------------------------------ *)

type span_tree = {
  name : string;
  start : float; (* seconds since the sink was created *)
  duration : float;
  attrs : (string * Json.t) list;
  children : span_tree list;
}

(* Open spans are accumulated mutably and normalized by [trace]. *)
type open_span = {
  oname : string;
  ostart : float;
  mutable ostop : float;
  mutable oattrs : (string * Json.t) list; (* reverse order *)
  mutable okids : open_span list;          (* reverse order *)
}

type active = {
  clock : unit -> float;
  epoch : float;
  mutable stack : open_span list; (* innermost first *)
  mutable roots : open_span list; (* reverse completion order *)
  reg : registry;
}

type sink = Noop | Active of active

let noop = Noop

let make ?(clock = Unix.gettimeofday) () =
  Active
    { clock; epoch = clock (); stack = []; roots = []; reg = registry () }

let enabled = function Noop -> false | Active _ -> true

let span t ?(attrs = []) name f =
  match t with
  | Noop -> f ()
  | Active a ->
      let s =
        { oname = name; ostart = a.clock () -. a.epoch; ostop = nan;
          oattrs = List.rev attrs; okids = [] }
      in
      a.stack <- s :: a.stack;
      let finish () =
        s.ostop <- a.clock () -. a.epoch;
        match a.stack with
        | top :: rest when top == s -> (
            a.stack <- rest;
            match rest with
            | parent :: _ -> parent.okids <- s :: parent.okids
            | [] -> a.roots <- s :: a.roots)
        | _ ->
            (* Unbalanced nesting can only happen if a callee captured
               the sink and closed spans out of order; drop to the
               matching frame rather than corrupting the tree. *)
            a.stack <- List.filter (fun o -> not (o == s)) a.stack;
            if a.stack = [] then a.roots <- s :: a.roots
      in
      (match f () with
      | v ->
          finish ();
          v
      | exception e ->
          finish ();
          raise e)

let set_attr t key v =
  match t with
  | Noop -> ()
  | Active a -> (
      match a.stack with
      | s :: _ -> s.oattrs <- (key, v) :: s.oattrs
      | [] -> ())

let event t ?(attrs = []) name =
  match t with
  | Noop -> ()
  | Active a -> (
      let now = a.clock () -. a.epoch in
      let s =
        { oname = name; ostart = now; ostop = now; oattrs = List.rev attrs;
          okids = [] }
      in
      match a.stack with
      | parent :: _ -> parent.okids <- s :: parent.okids
      | [] -> a.roots <- s :: a.roots)

(* Sink-level metrics.  [counter] hands hot loops a handle: for a noop
   sink the handle is a fresh throwaway record, so the loop still runs
   the same field mutation and the branch disappears from the inner
   iteration entirely. *)

let counter t name =
  match t with
  | Noop -> { cname = name; value = 0 }
  | Active a -> reg_counter a.reg name

let histogram t name =
  match t with
  | Noop ->
      { hname = name; hcount = 0; hsum = 0.0; hmin = infinity;
        hmax = neg_infinity }
  | Active a -> reg_histogram a.reg name

let add t name n =
  match t with Noop -> () | Active a -> incr (reg_counter a.reg name) n

let merge_registry t reg =
  match t with
  | Noop -> ()
  | Active a ->
      List.iter
        (fun c -> incr (reg_counter a.reg c.cname) c.value)
        (List.rev reg.crev);
      List.iter
        (fun h ->
          let dst = reg_histogram a.reg h.hname in
          dst.hcount <- dst.hcount + h.hcount;
          dst.hsum <- dst.hsum +. h.hsum;
          if h.hmin < dst.hmin then dst.hmin <- h.hmin;
          if h.hmax > dst.hmax then dst.hmax <- h.hmax)
        (List.rev reg.hrev)

let counters = function
  | Noop -> []
  | Active a -> counter_list a.reg

let histograms = function
  | Noop -> []
  | Active a -> histogram_list a.reg

let rec normalize o =
  {
    name = o.oname;
    start = o.ostart;
    duration =
      (if Float.is_nan o.ostop then 0.0 else Float.max 0.0 (o.ostop -. o.ostart));
    attrs = List.rev o.oattrs;
    children = List.rev_map normalize o.okids;
  }

let trace = function
  | Noop -> []
  | Active a ->
      (* Completed roots in start order; any span still open is
         reported as-is with a zero duration. *)
      let open_roots =
        match List.rev a.stack with outermost :: _ -> [ outermost ] | [] -> []
      in
      List.rev_map normalize a.roots @ List.map normalize open_roots
