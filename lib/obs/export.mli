(** Trace and metric exporters.

    Three formats from one {!Obs.sink}:

    - {!render}: an indented human tree (span name, wall time,
      attributes) followed by counter and histogram tables with
      p50/p90/p95/p99 quantiles;
    - {!jsonl_lines} / {!write_jsonl}: one JSON object per line.  Span
      lines are Chrome trace {e complete} events ([{"ph":"X"}] with
      microsecond [ts]/[dur]), so a trace file loads directly into
      chrome://tracing or Perfetto; counters and histograms follow as
      [{"ph":"C"}] counter events.  Spans carrying a [domain] lane
      attribute (and their subtrees) are placed on a distinct [tid]
      per worker lane ([tid = 2 + lane]; the main timeline is
      [tid = 1]), with [thread_name] metadata events naming each lane.
      Every line round-trips through {!Json.of_string}, which the test
      suite asserts;
    - {!prometheus_lines} / {!prometheus_string}: Prometheus text
      exposition — counters as [counter] metrics, histograms as
      [summary] metrics with [quantile] labels.  Metric names are
      prefixed [mjoin_] and sanitized to [[a-zA-Z0-9_:]]. *)

val render : Format.formatter -> Obs.sink -> unit

val render_metrics : Format.formatter -> Obs.sink -> unit
(** The counter and histogram tables of {!render} without the span
    tree — what [mjoin stats] prints. *)

val to_string : Obs.sink -> string

val trace_events : Obs.sink -> Json.t list
(** Thread-name metadata first (when there are spans), then spans in
    pre-order (parents before children, roots in start order), then
    counters, then histograms. *)

val jsonl_lines : Obs.sink -> string list
val write_jsonl : string -> Obs.sink -> unit
(** [write_jsonl path sink] writes {!jsonl_lines} to [path], one per
    line.  The channel is closed even on a write error. *)

val prometheus_lines : Obs.sink -> string list
val prometheus_string : Obs.sink -> string
