(** Trace and metric exporters.

    Two formats from one {!Obs.sink}:

    - {!render}: an indented human tree (span name, wall time,
      attributes) followed by counter and histogram tables;
    - {!jsonl_lines} / {!write_jsonl}: one JSON object per line.  Span
      lines are Chrome trace {e complete} events ([{"ph":"X"}] with
      microsecond [ts]/[dur]), so a trace file loads directly into
      chrome://tracing or Perfetto; counters and histograms follow as
      [{"ph":"C"}] counter events.  Every line round-trips through
      {!Json.of_string}, which the test suite asserts. *)

val render : Format.formatter -> Obs.sink -> unit
val to_string : Obs.sink -> string

val trace_events : Obs.sink -> Json.t list
(** Spans in pre-order (parents before children, roots in start order),
    then counters, then histograms. *)

val jsonl_lines : Obs.sink -> string list
val write_jsonl : string -> Obs.sink -> unit
(** [write_jsonl path sink] writes {!jsonl_lines} to [path], one per
    line.  The channel is closed even on a write error. *)
