(* Exporters: a human-readable span/metric tree, a JSONL writer whose
   span lines are Chrome trace events ("ph":"X" complete events with
   microsecond ts/dur) loadable in chrome://tracing / Perfetto, and
   Prometheus text exposition for the metric registry. *)

let us t = int_of_float (Float.round (t *. 1e6))

(* ------------------------------------------------------------------ *)
(* Human renderer                                                       *)
(* ------------------------------------------------------------------ *)

let pp_attrs fmt = function
  | [] -> ()
  | attrs ->
      Format.fprintf fmt "  {%s}"
        (String.concat ", "
           (List.map
              (fun (k, v) -> Printf.sprintf "%s=%s" k (Json.to_string v))
              attrs))

let rec pp_span fmt indent (s : Obs.span_tree) =
  Format.fprintf fmt "%s%-24s %8.3f ms%a@." indent s.Obs.name
    (s.Obs.duration *. 1e3) pp_attrs s.Obs.attrs;
  List.iter (pp_span fmt (indent ^ "  ")) s.Obs.children

let pp_histo_line fmt k (h : Obs.histo_summary) =
  if h.Obs.count = 0 then Format.fprintf fmt "  %-32s (empty)@." k
  else
    Format.fprintf fmt
      "  %-32s n=%d mean=%.3f p50=%.3f p90=%.3f p95=%.3f p99=%.3f min=%.3f \
       max=%.3f@."
      k h.Obs.count
      (h.Obs.sum /. float_of_int h.Obs.count)
      h.Obs.p50 h.Obs.p90 h.Obs.p95 h.Obs.p99 h.Obs.min h.Obs.max

let render_metrics fmt sink =
  (match Obs.counters sink with
  | [] -> ()
  | cs ->
      Format.fprintf fmt "counters:@.";
      List.iter (fun (k, v) -> Format.fprintf fmt "  %-32s %d@." k v) cs);
  match Obs.histograms sink with
  | [] -> ()
  | hs ->
      Format.fprintf fmt "histograms:@.";
      List.iter (fun (k, h) -> pp_histo_line fmt k h) hs

let render fmt sink =
  List.iter (pp_span fmt "") (Obs.trace sink);
  render_metrics fmt sink

let to_string sink = Format.asprintf "%t" (fun fmt -> render fmt sink)

(* ------------------------------------------------------------------ *)
(* Chrome trace events / JSONL                                          *)
(* ------------------------------------------------------------------ *)

(* Worker lanes render as separate Chrome threads: tid 1 is the main
   timeline, a span whose [domain] attribute is lane [l] puts its whole
   subtree on tid [2 + l]. *)
let main_tid = 1
let lane_tid l = 2 + l

let span_tid ~tid (s : Obs.span_tree) =
  match List.assoc_opt "domain" s.Obs.attrs with
  | Some (Json.Num l) -> lane_tid (int_of_float l)
  | _ -> tid

let span_event ~tid (s : Obs.span_tree) =
  Json.Obj
    [
      ("name", Json.str s.Obs.name);
      ("cat", Json.str "mjoin");
      ("ph", Json.str "X");
      ("pid", Json.int 1);
      ("tid", Json.int tid);
      ("ts", Json.int (us s.Obs.start));
      ("dur", Json.int (us s.Obs.duration));
      ("args", Json.Obj s.Obs.attrs);
    ]

let thread_name_event ~tid name =
  Json.Obj
    [
      ("name", Json.str "thread_name");
      ("ph", Json.str "M");
      ("pid", Json.int 1);
      ("tid", Json.int tid);
      ("args", Json.Obj [ ("name", Json.str name) ]);
    ]

let counter_event name v =
  Json.Obj
    [
      ("name", Json.str name);
      ("ph", Json.str "C");
      ("pid", Json.int 1);
      ("tid", Json.int 1);
      ("ts", Json.int 0);
      ("args", Json.Obj [ ("value", Json.int v) ]);
    ]

let histogram_event name (h : Obs.histo_summary) =
  Json.Obj
    [
      ("name", Json.str name);
      ("ph", Json.str "C");
      ("pid", Json.int 1);
      ("tid", Json.int 1);
      ("ts", Json.int 0);
      ("args",
       Json.Obj
         [
           ("count", Json.int h.Obs.count);
           ("sum", Json.float h.Obs.sum);
           ("min", Json.float h.Obs.min);
           ("max", Json.float h.Obs.max);
           ("p50", Json.float h.Obs.p50);
           ("p90", Json.float h.Obs.p90);
           ("p95", Json.float h.Obs.p95);
           ("p99", Json.float h.Obs.p99);
         ]);
    ]

let trace_events sink =
  let lanes = ref [] in
  let rec flatten ~tid acc s =
    let tid = span_tid ~tid s in
    if tid <> main_tid && not (List.mem tid !lanes) then
      lanes := tid :: !lanes;
    List.fold_left (flatten ~tid) (span_event ~tid s :: acc) s.Obs.children
  in
  let spans =
    List.rev (List.fold_left (flatten ~tid:main_tid) [] (Obs.trace sink))
  in
  let metadata =
    if spans = [] then []
    else
      thread_name_event ~tid:main_tid "main"
      :: List.rev_map
           (fun tid ->
             thread_name_event ~tid
               (Printf.sprintf "worker %d" (tid - lane_tid 0)))
           !lanes
  in
  metadata @ spans
  @ List.map (fun (k, v) -> counter_event k v) (Obs.counters sink)
  @ List.map (fun (k, h) -> histogram_event k h) (Obs.histograms sink)

let jsonl_lines sink = List.map Json.to_string (trace_events sink)

let write_jsonl path sink =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        (jsonl_lines sink))

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                           *)
(* ------------------------------------------------------------------ *)

let prom_name name =
  let b = Bytes.of_string ("mjoin_" ^ name) in
  Bytes.iteri
    (fun i c ->
      let ok =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9')
        || c = '_' || c = ':'
      in
      if not ok then Bytes.set b i '_')
    b;
  Bytes.to_string b

let prom_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let prometheus_lines sink =
  let counters =
    List.concat_map
      (fun (k, v) ->
        let n = prom_name k in
        [ Printf.sprintf "# TYPE %s counter" n;
          Printf.sprintf "%s %d" n v ])
      (Obs.counters sink)
  in
  let histos =
    List.concat_map
      (fun (k, (h : Obs.histo_summary)) ->
        let n = prom_name k in
        let q label v =
          Printf.sprintf "%s{quantile=\"%s\"} %s" n label (prom_float v)
        in
        Printf.sprintf "# TYPE %s summary" n
        ::
        (if h.Obs.count = 0 then []
         else
           [ q "0.5" h.Obs.p50; q "0.9" h.Obs.p90; q "0.95" h.Obs.p95;
             q "0.99" h.Obs.p99 ])
        @ [ Printf.sprintf "%s_sum %s" n (prom_float h.Obs.sum);
            Printf.sprintf "%s_count %d" n h.Obs.count ])
      (Obs.histograms sink)
  in
  counters @ histos

let prometheus_string sink =
  String.concat "" (List.map (fun l -> l ^ "\n") (prometheus_lines sink))
