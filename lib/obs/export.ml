(* Exporters: a human-readable span/metric tree and a JSONL writer
   whose span lines are Chrome trace events ("ph":"X" complete events
   with microsecond ts/dur), so a trace file is loadable in
   chrome://tracing / Perfetto and diffable across PRs line by line. *)

let us t = int_of_float (Float.round (t *. 1e6))

(* ------------------------------------------------------------------ *)
(* Human renderer                                                       *)
(* ------------------------------------------------------------------ *)

let pp_attrs fmt = function
  | [] -> ()
  | attrs ->
      Format.fprintf fmt "  {%s}"
        (String.concat ", "
           (List.map
              (fun (k, v) -> Printf.sprintf "%s=%s" k (Json.to_string v))
              attrs))

let rec pp_span fmt indent (s : Obs.span_tree) =
  Format.fprintf fmt "%s%-24s %8.3f ms%a@." indent s.Obs.name
    (s.Obs.duration *. 1e3) pp_attrs s.Obs.attrs;
  List.iter (pp_span fmt (indent ^ "  ")) s.Obs.children

let render fmt sink =
  List.iter (pp_span fmt "") (Obs.trace sink);
  (match Obs.counters sink with
  | [] -> ()
  | cs ->
      Format.fprintf fmt "counters:@.";
      List.iter (fun (k, v) -> Format.fprintf fmt "  %-32s %d@." k v) cs);
  match Obs.histograms sink with
  | [] -> ()
  | hs ->
      Format.fprintf fmt "histograms:@.";
      List.iter
        (fun (k, (h : Obs.histo_summary)) ->
          if h.Obs.count = 0 then Format.fprintf fmt "  %-32s (empty)@." k
          else
            Format.fprintf fmt "  %-32s n=%d mean=%.3f min=%.3f max=%.3f@." k
              h.Obs.count
              (h.Obs.sum /. float_of_int h.Obs.count)
              h.Obs.min h.Obs.max)
        hs

let to_string sink = Format.asprintf "%t" (fun fmt -> render fmt sink)

(* ------------------------------------------------------------------ *)
(* Chrome trace events / JSONL                                          *)
(* ------------------------------------------------------------------ *)

let span_event (s : Obs.span_tree) =
  Json.Obj
    [
      ("name", Json.str s.Obs.name);
      ("cat", Json.str "mjoin");
      ("ph", Json.str "X");
      ("pid", Json.int 1);
      ("tid", Json.int 1);
      ("ts", Json.int (us s.Obs.start));
      ("dur", Json.int (us s.Obs.duration));
      ("args", Json.Obj s.Obs.attrs);
    ]

let counter_event name v =
  Json.Obj
    [
      ("name", Json.str name);
      ("ph", Json.str "C");
      ("pid", Json.int 1);
      ("tid", Json.int 1);
      ("ts", Json.int 0);
      ("args", Json.Obj [ ("value", Json.int v) ]);
    ]

let histogram_event name (h : Obs.histo_summary) =
  Json.Obj
    [
      ("name", Json.str name);
      ("ph", Json.str "C");
      ("pid", Json.int 1);
      ("tid", Json.int 1);
      ("ts", Json.int 0);
      ("args",
       Json.Obj
         [
           ("count", Json.int h.Obs.count);
           ("sum", Json.float h.Obs.sum);
           ("min", Json.float h.Obs.min);
           ("max", Json.float h.Obs.max);
         ]);
    ]

let trace_events sink =
  let rec flatten acc s =
    List.fold_left flatten (span_event s :: acc) s.Obs.children
  in
  let spans = List.rev (List.fold_left flatten [] (Obs.trace sink)) in
  spans
  @ List.map (fun (k, v) -> counter_event k v) (Obs.counters sink)
  @ List.map (fun (k, h) -> histogram_event k h) (Obs.histograms sink)

let jsonl_lines sink = List.map Json.to_string (trace_events sink)

let write_jsonl path sink =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        (jsonl_lines sink))
