(* Telemetry persistence: append-only JSONL sidecar files.

   Every record is one self-describing JSON object per line with a
   schema version ("v") and a wall-clock timestamp ("ts", Unix seconds
   — wall clock on purpose: these records correlate runs across
   processes, unlike span timestamps which are monotonic-relative).
   Appending keeps the file a valid JSONL stream, so repeated
   `mjoin explain --telemetry FILE` runs accumulate a training feed. *)

let schema_version = 1

let record ?ts fields =
  let ts = match ts with Some t -> t | None -> Unix.gettimeofday () in
  Json.Obj
    (("v", Json.int schema_version) :: ("ts", Json.float ts) :: fields)

let append_lines path jsons =
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
  in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun j ->
          output_string oc (Json.to_string j);
          output_char oc '\n')
        jsons)

let append path json = append_lines path [ json ]

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | "" -> go acc
        | line -> (
            match Json.of_string_opt line with
            | Some j -> go (j :: acc)
            | None ->
                failwith
                  (Printf.sprintf "%s: malformed telemetry line %d" path
                     (List.length acc + 1)))
      in
      go [])

(* Span attributes of the GC accounting, repackaged for records. *)
let gc_fields sink =
  let keys =
    [ "gc.minor_words"; "gc.promoted_words"; "gc.major_words";
      "gc.minor_collections"; "gc.major_collections" ]
  in
  let cs = Obs.counters sink in
  List.filter_map
    (fun k ->
      Option.map (fun v -> (k, Json.int v)) (List.assoc_opt k cs))
    keys
