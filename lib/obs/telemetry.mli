(** Telemetry persistence: append-only JSONL sidecar files
    ([MJ_TELEMETRY=FILE] / [--telemetry FILE]).

    Each record is one JSON object per line carrying a schema version
    ([v]) and a wall-clock timestamp ([ts], Unix seconds); command
    code adds its own fields (shape, policy, plane, domains, per-step
    estimated/actual cardinalities, Q-error, timings, GC deltas).
    Appends never rewrite existing lines, so the file is a durable
    stream that adaptive optimization can learn from later. *)

val schema_version : int

val record : ?ts:float -> (string * Json.t) list -> Json.t
(** Wrap command fields into a versioned, timestamped record.  [ts]
    defaults to [Unix.gettimeofday ()]; inject it for deterministic
    tests. *)

val append : string -> Json.t -> unit
(** Append one record to the file (created with mode [0o644] if
    missing), one line per record. *)

val append_lines : string -> Json.t list -> unit

val read_lines : string -> Json.t list
(** Parse a telemetry file back into records, skipping blank lines.
    Raises [Failure] on a malformed line. *)

val gc_fields : Obs.sink -> (string * Json.t) list
(** The sink's accumulated GC counters ([gc.minor_words], …) as record
    fields, empty if GC accounting never ran. *)
