(** Unified tracing and metrics ([Mj_obs]).

    One sink abstraction serves the whole system:

    - {e spans} — nested wall-clock-timed regions with JSON attributes,
      collected into an in-memory trace tree ({!trace});
    - {e metrics} — named counters and histograms in a {!registry},
      either standalone (the engine's execution statistics) or attached
      to a sink (optimizer search-effort counters);
    - exporters live in {!Export}: a human tree renderer and a
      JSONL / Chrome-trace-event writer.

    The zero-instrumentation path is free by construction: {!noop} is a
    constant, every operation on it is one pattern match, and hot loops
    obtain {!counter} handles once — a handle is a mutable record whose
    bump compiles to a field assignment, identical in cost to the
    ad-hoc mutable records the engine used before this layer existed. *)

(** {1 Metrics} *)

type counter
type histogram

type histo_summary = { count : int; sum : float; min : float; max : float }
(** [min]/[max] are [infinity]/[neg_infinity] when [count = 0]. *)

type registry
(** A named collection of counters and histograms.  Registration is
    idempotent: asking twice for the same name returns the same
    handle.  Iteration order is registration order. *)

val registry : unit -> registry
val reg_counter : registry -> string -> counter
val reg_histogram : registry -> string -> histogram

val incr : counter -> int -> unit
val record_max : counter -> int -> unit
(** Gauge-style update: keep the maximum value ever recorded. *)

val value : counter -> int
val counter_name : counter -> string
val observe : histogram -> float -> unit
val summary : histogram -> histo_summary

val counter_list : registry -> (string * int) list
val histogram_list : registry -> (string * histo_summary) list

(** {1 Sinks} *)

type sink

val noop : sink
(** The default everywhere an [?obs] parameter appears: records
    nothing, costs nothing. *)

val make : ?clock:(unit -> float) -> unit -> sink
(** A collecting sink.  [clock] defaults to [Unix.gettimeofday]; pass a
    deterministic clock for golden tests.  Span timestamps are relative
    to sink creation. *)

val enabled : sink -> bool
(** [false] exactly for {!noop} — guard attribute construction with
    this to keep the disabled path allocation-free. *)

(** {1 Spans} *)

type span_tree = {
  name : string;
  start : float;     (** seconds since sink creation *)
  duration : float;
  attrs : (string * Json.t) list;
  children : span_tree list;
}

val span : sink -> ?attrs:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f] inside a timed region nested under the
    currently open span.  The span is closed (and timed) even when [f]
    raises.  On {!noop} this is exactly [f ()]. *)

val set_attr : sink -> string -> Json.t -> unit
(** Attach an attribute to the innermost open span — for values only
    known mid-region, like an output cardinality. *)

val event : sink -> ?attrs:(string * Json.t) list -> string -> unit
(** A zero-duration child of the current span. *)

val trace : sink -> span_tree list
(** Completed root spans in order; empty for {!noop}. *)

(** {1 Sink-level metrics} *)

val counter : sink -> string -> counter
(** The sink-registry counter of that name.  For {!noop} a fresh
    unregistered handle is returned: callers bump it freely and the
    value simply is never read. *)

val histogram : sink -> string -> histogram
val add : sink -> string -> int -> unit

val merge_registry : sink -> registry -> unit
(** Fold a standalone registry's totals into the sink — how the
    engine's per-execution statistics become part of a trace. *)

val counters : sink -> (string * int) list
val histograms : sink -> (string * histo_summary) list
