(** Unified tracing and metrics ([Mj_obs]).

    One sink abstraction serves the whole system:

    - {e spans} — nested monotonic-clock-timed regions with JSON
      attributes, collected into an in-memory trace tree ({!trace});
    - {e metrics} — named counters and log-bucketed quantile histograms
      in a {!registry}, either standalone (the engine's execution
      statistics) or attached to a sink (optimizer search-effort
      counters);
    - {e domain lanes} — {!fork} hands worker domains private child
      sinks that {!merge_child} stitches back into the parent trace
      deterministically;
    - exporters live in {!Export}: a human tree renderer, a JSONL /
      Chrome-trace-event writer, and Prometheus text exposition.

    The zero-instrumentation path is free by construction: {!noop} is a
    constant, every operation on it is one pattern match, and hot loops
    obtain {!counter} handles once — a handle is a mutable record whose
    bump compiles to a field assignment, identical in cost to the
    ad-hoc mutable records the engine used before this layer existed. *)

(** {1 Metrics} *)

type counter
type histogram

type histo_summary = {
  count : int;
  sum : float;
  min : float;  (** [infinity] when [count = 0] *)
  max : float;  (** [neg_infinity] when [count = 0] *)
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
}
(** Quantiles come from the fixed log-bucket layout: 16 linear
    sub-buckets per power of two, so each is within one sub-bucket
    (relative error ≤ 1/16) of the exact nearest-rank quantile, and
    clamped to the observed [min]/[max].  All are [0.0] when
    [count = 0]. *)

type registry
(** A named collection of counters and histograms.  Registration is
    idempotent: asking twice for the same name returns the same
    handle.  Iteration order is registration order. *)

val registry : unit -> registry
val reg_counter : registry -> string -> counter
val reg_histogram : registry -> string -> histogram

val incr : counter -> int -> unit
val record_max : counter -> int -> unit
(** Gauge-style update: keep the maximum value ever recorded. *)

val value : counter -> int
val counter_name : counter -> string
val observe : histogram -> float -> unit

val quantile : histogram -> float -> float
(** Nearest-rank quantile from the bucket counts; [0.0] when empty.
    Because the bucket layout is global and fixed, quantiles commute
    with {!merge_registry}: merge-of-shards equals shard-of-merges. *)

val summary : histogram -> histo_summary

val counter_list : registry -> (string * int) list
val histogram_list : registry -> (string * histo_summary) list

(** {1 Sinks} *)

type sink

val noop : sink
(** The default everywhere an [?obs] parameter appears: records
    nothing, costs nothing. *)

val monotonic_time : unit -> float
(** [CLOCK_MONOTONIC] in seconds (arbitrary origin) — the default span
    clock.  Never jumps backwards, unlike [Unix.gettimeofday]. *)

val make : ?clock:(unit -> float) -> ?gc:bool -> unit -> sink
(** A collecting sink.  [clock] defaults to {!monotonic_time}; pass a
    deterministic clock for golden tests.  Span timestamps are relative
    to sink creation (monotonic-relative, not wall-clock).  When [gc]
    is [true] (the default) every span carries [Gc.quick_stat] deltas
    ([gc.minor_words], [gc.promoted_words], [gc.major_words],
    [gc.minor_collections], [gc.major_collections]) as attributes, and
    root-span deltas accumulate into sink counters of the same names;
    pass [~gc:false] for byte-identical golden traces. *)

val enabled : sink -> bool
(** [false] exactly for {!noop} — guard attribute construction with
    this to keep the disabled path allocation-free. *)

(** {1 Spans} *)

type span_tree = {
  name : string;
  start : float;     (** seconds since sink creation *)
  duration : float;
  attrs : (string * Json.t) list;
  children : span_tree list;
}

val span : sink -> ?attrs:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f] inside a timed region nested under the
    currently open span.  The span is closed (and timed) even when [f]
    raises.  Every close also observes the duration into the sink
    histogram [span.<name>.ms].  On {!noop} this is exactly [f ()]. *)

val set_attr : sink -> string -> Json.t -> unit
(** Attach an attribute to the innermost open span — for values only
    known mid-region, like an output cardinality. *)

val event : sink -> ?attrs:(string * Json.t) list -> string -> unit
(** A zero-duration child of the current span. *)

val trace : sink -> span_tree list
(** Completed root spans in order; empty for {!noop}. *)

(** {1 Per-domain child sinks}

    Worker domains must never touch a parent sink's mutable span stack.
    Instead the parent {!fork}s one child sink per {e task}, each task
    records into its own child (on whatever domain runs it), and after
    the parallel section the parent calls {!merge_child} in task-index
    order — so the merged trace is identical for any domain count, with
    only the [domain] lane attribute varying.  [Mj_pool.Pool.run_traced]
    packages this protocol. *)

val fork : sink -> sink
(** A child sink sharing the parent's epoch, clock source and GC flag,
    with private span state and registry.  {!fork} of {!noop} is
    {!noop}. *)

val set_lane : sink -> int -> unit
(** Tag the child with the worker lane (worker index) executing it;
    {!merge_child} stamps the tag as a [domain] attribute on the
    child's root spans, which the Chrome exporter renders as per-domain
    [tid] lanes. *)

val lane : sink -> int
(** The tag set by {!set_lane}, [-1] if none. *)

val merge_child : sink -> sink -> unit
(** [merge_child parent child] appends the child's completed root spans
    as children of the parent's innermost open span (or as parent
    roots), and folds the child's registry — counters, histogram
    buckets, GC totals — into the parent's.  Call from the parent's
    domain only, after the child's work completed. *)

(** {1 Sink-level metrics} *)

val counter : sink -> string -> counter
(** The sink-registry counter of that name.  For {!noop} one shared
    dummy handle is returned (its name is ["noop"]): callers bump it
    freely and the value simply is never read. *)

val histogram : sink -> string -> histogram
(** Same contract as {!counter}: one shared dummy handle on {!noop}. *)

val add : sink -> string -> int -> unit

val merge_registry : sink -> registry -> unit
(** Fold a standalone registry's totals into the sink — how the
    engine's per-execution statistics become part of a trace.
    Histograms merge exactly, bucket by bucket. *)

val counters : sink -> (string * int) list
val histograms : sink -> (string * histo_summary) list

val histogram_summary : sink -> string -> histo_summary option
(** The named sink histogram's summary, [None] if never registered. *)
