type t =
  | Pool_worker_kill
  | Cache_poison
  | Estimate_oversize
  | Frame_lossy_join
  | Yann_lossy_semijoin
  | Serve_worker_stall
  | Serve_stale_plan

exception Injected of string

let all =
  [
    Pool_worker_kill;
    Cache_poison;
    Estimate_oversize;
    Frame_lossy_join;
    Yann_lossy_semijoin;
    Serve_worker_stall;
    Serve_stale_plan;
  ]

let name = function
  | Pool_worker_kill -> "pool.worker_kill"
  | Cache_poison -> "cost.cache_poison"
  | Estimate_oversize -> "estimate.oversize"
  | Frame_lossy_join -> "frame.lossy_join"
  | Yann_lossy_semijoin -> "yann.lossy_semijoin"
  | Serve_worker_stall -> "serve.worker_stall"
  | Serve_stale_plan -> "serve.cache_stale_plan"

let of_name s =
  let s = String.lowercase_ascii (String.trim s) in
  List.find_opt (fun p -> name p = s) all

let index = function
  | Pool_worker_kill -> 0
  | Cache_poison -> 1
  | Estimate_oversize -> 2
  | Frame_lossy_join -> 3
  | Yann_lossy_semijoin -> 4
  | Serve_worker_stall -> 5
  | Serve_stale_plan -> 6

(* One atomic bitmask of active points, one atomic hit counter per
   point: consultation from pool workers running on other domains is
   racy by nature, and atomics keep it well-defined. *)
let active_mask = Atomic.make 0
let hit_counts = Array.init (List.length all) (fun _ -> Atomic.make 0)

let active p = Atomic.get active_mask land (1 lsl index p) <> 0

let enable p =
  let bit = 1 lsl index p in
  let rec loop () =
    let m = Atomic.get active_mask in
    if not (Atomic.compare_and_set active_mask m (m lor bit)) then loop ()
  in
  loop ()

let disable p =
  let bit = 1 lsl index p in
  let rec loop () =
    let m = Atomic.get active_mask in
    if not (Atomic.compare_and_set active_mask m (m land lnot bit)) then loop ()
  in
  loop ()

let reset () =
  Atomic.set active_mask 0;
  Array.iter (fun c -> Atomic.set c 0) hit_counts

let set_spec s =
  let parts =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  let rec resolve acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> (
        match of_name p with
        | Some fp -> resolve (fp :: acc) rest
        | None ->
            Error
              (Printf.sprintf "unknown failpoint %s (expected one of %s)" p
                 (String.concat ", " (List.map name all))))
  in
  match resolve [] parts with
  | Error _ as e -> e
  | Ok fps ->
      Atomic.set active_mask 0;
      List.iter enable fps;
      Ok ()

let spec () =
  all
  |> List.filter active
  |> List.map name
  |> String.concat ","

let fire p =
  if active p then begin
    Atomic.incr hit_counts.(index p);
    true
  end
  else false

let trip p = if fire p then raise (Injected (name p))

let hits p = Atomic.get hit_counts.(index p)
