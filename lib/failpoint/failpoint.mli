(** Fault-injection points ([Mj_failpoint]).

    A {e failpoint} is a named place in the engine where a fault can be
    injected on demand: a pool worker dies, a τ-cache entry is
    corrupted in storage, a cardinality estimate comes back wildly
    oversized, a columnar join loses a row.  The registry is
    process-global and domain-safe (atomics throughout), off by
    default, and costs one atomic load per consultation when idle.

    Failpoints exist so the check harness ([Mj_check]) can assert the
    engine's failure contract: under an injected fault the system
    either {e degrades gracefully} (the pool falls back to serial
    execution, the cache detects the corrupt entry and bypasses it) or
    {e fails loudly} ({!Injected} propagates) — it never silently
    returns corrupt results.  [frame.lossy_join] is the deliberate
    exception: it is the planted mutation [mjoin fuzz --self-test]
    uses to prove the harness detects and shrinks real bugs.

    Activation is env/config-driven: [Mj_engine.Engine.Config.of_env]
    reads [MJ_FAILPOINTS] (a comma-separated list of names) once per
    process and forwards it to {!set_spec}; tests flip individual
    points with {!enable}/{!disable}/{!reset}. *)

type t =
  | Pool_worker_kill
      (** a spawned pool worker raises {!Injected} after claiming its
          first task; the pool must recover by finishing the work
          serially *)
  | Cache_poison
      (** [Cost.Cache] stores a corrupted (negative) copy of every
          newly computed cardinality; reads must detect the corruption
          and bypass the entry *)
  | Estimate_oversize
      (** the cost-based planner's estimator multiplies every estimate
          by 1000 — plans may change, results must not *)
  | Frame_lossy_join
      (** the frame plane drops the last row of every non-empty join
          output — the planted defect the self-test must catch *)
  | Yann_lossy_semijoin
      (** the frame plane's Yannakakis path drops the last row of every
          non-empty semijoin output — the acyclic-path twin of
          [frame.lossy_join], planted so the yann differential leg
          proves it would catch a lossy reducer *)
  | Serve_worker_stall
      (** a serve worker sleeps past the per-request deadline before
          executing — the daemon must answer with a structured timeout
          error, never a hang or a partial result *)
  | Serve_stale_plan
      (** the serve plan cache ignores the strategy component of its
          key, so a repeated query shape can be answered with a plan
          lowered for a {e different} strategy — the planted serve bug
          the self-test must detect via its τ step log *)

exception Injected of string
(** Raised by {!trip}; carries the failpoint name. *)

val all : t list

val name : t -> string
(** ["pool.worker_kill"], ["cost.cache_poison"], ["estimate.oversize"],
    ["frame.lossy_join"], ["yann.lossy_semijoin"],
    ["serve.worker_stall"], ["serve.cache_stale_plan"]. *)

val of_name : string -> t option

(** {1 Activation} *)

val enable : t -> unit
val disable : t -> unit

val reset : unit -> unit
(** Deactivate every failpoint and zero the hit counters. *)

val active : t -> bool

val set_spec : string -> (unit, string) result
(** [set_spec "pool.worker_kill,frame.lossy_join"] activates exactly
    the listed failpoints (clearing all others; whitespace tolerated;
    the empty string deactivates everything).  [Error msg] on an
    unknown name — a typo'd injection must fail loudly, not silently
    test nothing. *)

val spec : unit -> string
(** The active failpoints as a {!set_spec}-compatible string. *)

(** {1 Consultation — the hooks the engine calls} *)

val fire : t -> bool
(** [fire p] is [true] iff [p] is active; counts a hit when it is.
    For faults expressed as data corruption (poison, oversize,
    lossy). *)

val trip : t -> unit
(** @raise Injected when active (counting a hit) — for faults
    expressed as a crash (worker kill). *)

val hits : t -> int
(** Times the failpoint fired since the last {!reset} — how the
    harness asserts an injected fault was actually exercised. *)
