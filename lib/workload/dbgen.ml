open Mj_relation
open Mj_hypergraph

let populate gen d =
  Database.of_relations (List.map gen (Scheme.Set.elements d))

let superkey_db ~rng ~rows ~domain d =
  populate (Datagen.injective ~rng ~rows ~domain) d

let uniform_db ~rng ~rows ~domain d =
  populate (Datagen.with_spine Datagen.uniform ~rng ~rows ~domain) d

let skewed_db ~rng ~rows ~domain ~skew d =
  populate
    (fun scheme ->
      Datagen.with_spine
        (fun ~rng ~rows ~domain scheme ->
          Datagen.zipf ~rng ~rows ~domain ~skew scheme)
        ~rng ~rows ~domain scheme)
    d

let consistent_acyclic_db ~rng ~rows ~domain d =
  if not (Gyo.is_alpha_acyclic d) then
    invalid_arg "Dbgen.consistent_acyclic_db: scheme is not alpha-acyclic";
  let db = uniform_db ~rng ~rows ~domain d in
  (* The naive full reducer reaches the full reduction on acyclic
     schemes; the spine tuple survives because it is in every relation,
     so the reduced states stay non-empty and pairwise consistent. *)
  Consistency.semijoin_reduce db
