open Mj_relation
open Multijoin

let i = Value.int
let s = Value.str

(* ------------------------------------------------------------------ *)
(* Example 1 (Section 3)                                                *)
(* ------------------------------------------------------------------ *)

(* R3 and R4 are specified only by tau(R3) = tau(R4) = 7; any states of
   that size leave the example's numbers unchanged because they only ever
   enter through Cartesian products. *)
let seven_rows = List.init 7 (fun k -> [ i k; i k ])

let example1 =
  Database.of_rows
    [
      ("AB", [ [ s "p"; i 0 ]; [ s "q"; i 0 ]; [ s "r"; i 0 ]; [ s "s"; i 1 ] ]);
      ("BC", [ [ i 0; s "w" ]; [ i 0; s "x" ]; [ i 0; s "y" ]; [ i 1; s "z" ] ]);
      ("DE", seven_rows);
      ("FG", seven_rows);
    ]

let example1_strategies =
  [
    ("S1", Strategy.of_string "((AB * BC) * DE) * FG");
    ("S2", Strategy.of_string "((AB * BC) * FG) * DE");
    ("S3", Strategy.of_string "(AB * BC) * (DE * FG)");
    ("S4", Strategy.of_string "(AB * DE) * (BC * FG)");
  ]

(* ------------------------------------------------------------------ *)
(* Example 2 (Section 3)                                                *)
(* ------------------------------------------------------------------ *)

let example2_c1_not_c2 = example1

let example2_c2_not_c1 =
  Database.of_rows
    [
      ( "AB",
        [
          [ i 1; s "x" ]; [ i 2; s "y" ]; [ i 3; s "y" ]; [ i 4; s "y" ];
          [ i 5; s "y" ]; [ i 6; s "y" ]; [ i 7; s "y" ]; [ i 8; s "y" ];
        ] );
      ("BC", [ [ s "y"; i 0 ]; [ s "u"; i 0 ]; [ s "v"; i 0 ] ]);
      ("DE", [ [ i 0; i 0 ]; [ i 1; i 1 ] ]);
    ]

(* ------------------------------------------------------------------ *)
(* Example 3 (Section 4)                                                *)
(* ------------------------------------------------------------------ *)

(* Schemes: GS (game, student), SC (student, course), CL (course,
   laboratory).  The state makes all three strategies generate exactly 4
   intermediate tuples — so all are τ-optimum, including the linear
   (GS ⋈ CL) ⋈ SC that uses a Cartesian product — while C1 holds with
   equality everywhere (so C1' fails). *)
let example3 =
  Database.of_rows
    [
      ("GS", [ [ s "Hockey"; s "Mokhtar" ]; [ s "Tennis"; s "Lin" ] ]);
      ( "SC",
        [
          [ s "Mokhtar"; s "Phy101" ];
          [ s "Mokhtar"; s "Lang22" ];
          [ s "Lin"; s "Lit101" ];
          [ s "Lin"; s "Phy101" ];
          [ s "Katina"; s "Hist103" ];
          [ s "Katina"; s "Psch123" ];
          [ s "Sundram"; s "Phy101" ];
          [ s "Sundram"; s "Hist103" ];
        ] );
      ("CL", [ [ s "Phy101"; s "Fermi" ]; [ s "Lang22"; s "Chomsky" ] ]);
    ]

(* ------------------------------------------------------------------ *)
(* Example 4 (Section 4)                                                *)
(* ------------------------------------------------------------------ *)

let example4 =
  Database.of_rows
    [
      ( "GS",
        [
          [ s "Hockey"; s "Mokhtar" ];
          [ s "Tennis"; s "Mokhtar" ];
          [ s "Tennis"; s "Lin" ];
        ] );
      ( "SC",
        [
          [ s "Mokhtar"; s "Lang22" ];
          [ s "Mokhtar"; s "Lit104" ];
          [ s "Mokhtar"; s "Phy101" ];
          [ s "Lin"; s "Phy101" ];
          [ s "Lin"; s "Hist103" ];
          [ s "Lin"; s "Psch123" ];
          [ s "Katina"; s "Lang22" ];
          [ s "Katina"; s "Lit104" ];
          [ s "Katina"; s "Phy101" ];
          [ s "Sundram"; s "Phy101" ];
          [ s "Sundram"; s "Lang22" ];
          [ s "Sundram"; s "Hist103" ];
        ] );
      ("CL", [ [ s "Phy101"; s "Fermi" ]; [ s "Lang22"; s "Chomsky" ] ]);
    ]

let example4_strategies =
  [
    ("S1", Strategy.of_string "(GS * SC) * CL");
    ("S2", Strategy.of_string "GS * (SC * CL)");
    ("S3", Strategy.of_string "(GS * CL) * SC");
  ]

(* ------------------------------------------------------------------ *)
(* Example 5 (Section 4)                                                *)
(* ------------------------------------------------------------------ *)

(* Schemes: MS (major, student), SC (student, course), CI (course,
   instructor), ID (instructor, department).  Einstein appears in CI but
   not in ID, and Math200 is taught by three instructors, which is what
   breaks C3 (τ(CI ⋈ ID) = 6 > 3 = τ(ID)) while C1 and C2 still hold;
   the unique τ-optimum is the bushy (MS ⋈ SC) ⋈ (CI ⋈ ID). *)
let example5 =
  Database.of_rows
    [
      ( "MS",
        [
          [ s "Math"; s "Mokhtar" ];
          [ s "Phy"; s "Lin" ];
          [ s "Phy"; s "Katina" ];
        ] );
      ( "SC",
        [
          [ s "Mokhtar"; s "Phy311" ];
          [ s "Mokhtar"; s "Math200" ];
          [ s "Lin"; s "Math200" ];
          [ s "Sundram"; s "Phy411" ];
        ] );
      ( "CI",
        [
          [ s "Phy311"; s "Newton" ];
          [ s "Phy411"; s "Newton" ];
          [ s "Math200"; s "Lorentz" ];
          [ s "Math5"; s "Lorentz" ];
          [ s "Math200"; s "Einstein" ];
          [ s "Math51"; s "Einstein" ];
          [ s "Phy102"; s "Einstein" ];
          [ s "Math200"; s "Turing" ];
          [ s "Phy103"; s "Turing" ];
        ] );
      ( "ID",
        [
          [ s "Newton"; s "Phy" ];
          [ s "Lorentz"; s "Math" ];
          [ s "Turing"; s "Math" ];
        ] );
    ]

let example5_optimum = Strategy.of_string "(MS * SC) * (CI * ID)"

(* ------------------------------------------------------------------ *)
(* Supply chain: a small TPC-H-like snowflake                           *)
(* ------------------------------------------------------------------ *)

let relation attrs rows =
  let attrs = List.map Attr.make attrs in
  Relation.make
    (Attr.Set.of_list attrs)
    (List.map (fun row -> Tuple.of_list (List.combine attrs row)) rows)

(* region(rk, rname) <- nation(nk, nname, rk) <- customer(ck, cname, nk)
   <- orders(ok, ck, odate) <- lineitem(lk, ok, qty): every join matches
   a foreign key against the referenced relation's key, so every
   connected subset is a lossless join and C2 holds; C3 does not (the
   referencing side is not keyed by the join attribute). *)
let supply_chain =
  Database.of_relations
    [
      relation [ "rk"; "rname" ]
        [ [ i 0; s "east" ]; [ i 1; s "west" ] ];
      relation [ "nk"; "nname"; "rk" ]
        [
          [ i 0; s "ada"; i 0 ]; [ i 1; s "bel"; i 0 ];
          [ i 2; s "cor"; i 1 ]; [ i 3; s "dor"; i 1 ];
        ];
      relation [ "ck"; "cname"; "nk" ]
        (List.init 6 (fun c -> [ i c; s (Printf.sprintf "c%d" c); i (c mod 4) ]));
      relation [ "ok"; "ck"; "odate" ]
        (List.init 10 (fun o -> [ i o; i (o mod 6); i (2024 + (o mod 2)) ]));
      relation [ "lk"; "ok"; "qty" ]
        (List.init 20 (fun l -> [ i l; i (l mod 10); i (1 + (l mod 5)) ]));
    ]

let supply_chain_fds =
  let fd l r =
    Fd.fd (Attr.Set.of_list (List.map Attr.make l))
      (Attr.Set.of_list (List.map Attr.make r))
  in
  [
    fd [ "rk" ] [ "rname" ];
    fd [ "nk" ] [ "nname"; "rk" ];
    fd [ "ck" ] [ "cname"; "nk" ];
    fd [ "ok" ] [ "ck"; "odate" ];
    fd [ "lk" ] [ "ok"; "qty" ];
  ]

(* ------------------------------------------------------------------ *)
(* University: Example 5's registrar, one relation wider                *)
(* ------------------------------------------------------------------ *)

(* Schemes: MS (major, student), SC (student, course), CI (course,
   instructor), ID (instructor, department), CL (course, laboratory).
   A 5-relation chain query over the university registrar of Section 4,
   extending Example 5 with the laboratory assignments of Example 3.
   Labs exist only for some courses and Einstein still has no
   department, so join sizes shrink and grow along the chain — a
   scenario where estimated and actual cardinalities split visibly,
   used by the [explain] CLI smoke test. *)
let university =
  Database.of_rows
    [
      ( "MS",
        [
          [ s "Math"; s "Mokhtar" ];
          [ s "Phy"; s "Lin" ];
          [ s "Phy"; s "Katina" ];
          [ s "CS"; s "Sundram" ];
        ] );
      ( "SC",
        [
          [ s "Mokhtar"; s "Phy311" ];
          [ s "Mokhtar"; s "Math200" ];
          [ s "Lin"; s "Math200" ];
          [ s "Lin"; s "Phy102" ];
          [ s "Katina"; s "Math200" ];
          [ s "Sundram"; s "Phy411" ];
          [ s "Sundram"; s "Math51" ];
        ] );
      ( "CI",
        [
          [ s "Phy311"; s "Newton" ];
          [ s "Phy411"; s "Newton" ];
          [ s "Math200"; s "Lorentz" ];
          [ s "Math5"; s "Lorentz" ];
          [ s "Math200"; s "Einstein" ];
          [ s "Math51"; s "Einstein" ];
          [ s "Phy102"; s "Einstein" ];
          [ s "Math200"; s "Turing" ];
          [ s "Phy103"; s "Turing" ];
        ] );
      ( "ID",
        [
          [ s "Newton"; s "Phy" ];
          [ s "Lorentz"; s "Math" ];
          [ s "Turing"; s "Math" ];
        ] );
      ( "CL",
        [
          [ s "Phy311"; s "Fermi" ];
          [ s "Phy102"; s "Fermi" ];
          [ s "Math200"; s "Hilbert" ];
          [ s "Phy411"; s "Cavendish" ];
        ] );
    ]

let all =
  [
    ("ex1", example1);
    ("ex2a", example2_c1_not_c2);
    ("ex2b", example2_c2_not_c1);
    ("ex3", example3);
    ("ex4", example4);
    ("ex5", example5);
    ("supply", supply_chain);
    ("university", university);
  ]
