(** Condition-regime database generators.

    Each generator populates a database scheme (usually from
    {!Mj_hypergraph.Querygraph}) with data engineered so that a given
    condition of the paper holds — or is likely violated — by
    construction, providing the populations over which the theorem
    experiments run.  All guarantee [R_D ≠ ∅] via a spine tuple. *)

open Mj_relation
open Mj_hypergraph

val superkey_db :
  rng:Random.State.t -> rows:int -> domain:int -> Hypergraph.t -> Database.t
(** Every relation injective in every column, so all joins are on
    superkeys — the Section 4 hypothesis guaranteeing C3 (hence C1, C2).
    @raise Invalid_argument if [rows > domain]. *)

val uniform_db :
  rng:Random.State.t -> rows:int -> domain:int -> Hypergraph.t -> Database.t
(** Uniform independent data with a spine: no condition guaranteed —
    the adversarial population for the necessity experiments. *)

val skewed_db :
  rng:Random.State.t ->
  rows:int ->
  domain:int ->
  skew:float ->
  Hypergraph.t ->
  Database.t
(** Zipf-skewed data with a spine: joins blow up on hot values, the
    population on which linear-only search loses badly (the GAMMA
    observation). *)

val consistent_acyclic_db :
  rng:Random.State.t -> rows:int -> domain:int -> Hypergraph.t -> Database.t
(** For an α-acyclic scheme: uniform data, then fully semijoin-reduced,
    then re-seeded with the spine — pairwise consistent by construction.
    If the scheme is also γ-acyclic, the result satisfies the Section 5
    hypothesis for C4.
    @raise Invalid_argument if the scheme is not α-acyclic. *)
