(** Random relation states.

    Deterministic given the [Random.State.t]; all experiments pass
    explicit seeds so every table in the bench harness is reproducible.

    The distributions deliberately avoid the uniformity-and-independence
    assumption the paper criticises: [zipf] produces the skew under which
    the heuristic subspaces go wrong, while [injective] produces the
    key-like data under which Section 4's semantic conditions hold. *)

open Mj_relation

val uniform :
  rng:Random.State.t -> rows:int -> domain:int -> Scheme.t -> Relation.t
(** Up to [rows] tuples with attribute values drawn uniformly from
    [0 .. domain-1] (duplicates collapse, so the result can be smaller).
    @raise Invalid_argument if [rows < 0] or [domain < 1]. *)

val zipf :
  rng:Random.State.t ->
  rows:int ->
  domain:int ->
  skew:float ->
  Scheme.t ->
  Relation.t
(** Like {!uniform} but each value is drawn from a Zipf([skew])
    distribution over [0 .. domain-1]; [skew = 0.0] degenerates to
    uniform.  Heavier skew inflates join sizes on hot values. *)

val injective :
  rng:Random.State.t -> rows:int -> domain:int -> Scheme.t -> Relation.t
(** [rows] tuples in which every attribute column carries pairwise
    distinct values — hence {e every} non-empty subset of the scheme is
    a key.  When all relations of a database are generated this way,
    all joins are on superkeys, so the database satisfies C3
    (Section 4).
    @raise Invalid_argument if [rows > domain]. *)

val correlated :
  rng:Random.State.t ->
  rows:int ->
  domain:int ->
  noise:float ->
  Scheme.t ->
  Relation.t
(** Deliberately violates the independence assumption: the first
    attribute (in {!Attr} order) is uniform and every other attribute
    copies it, perturbed with probability [noise] to a uniform value.
    [noise = 1.0] degenerates to {!uniform}; [noise = 0.0] makes all
    columns identical.
    @raise Invalid_argument if [noise] is outside [0, 1]. *)

val with_spine :
  (rng:Random.State.t -> rows:int -> domain:int -> Scheme.t -> Relation.t) ->
  rng:Random.State.t ->
  rows:int ->
  domain:int ->
  Scheme.t ->
  Relation.t
(** Wraps a generator so the all-zeros tuple is always present.  Planting
    the same spine tuple in every relation guarantees [R_D ≠ ∅], which
    the theorems require. *)
