(** The paper's worked examples, as concrete databases.

    Examples 1 and 2 (Section 3) are printed in full in the paper and are
    reproduced verbatim.  Examples 3–5 (Section 4) are printed as tables
    whose scans are partly ambiguous; their states here are reconstructed
    to satisfy {e every} property the paper asserts about them (the
    strategy costs, which conditions hold and fail, and which strategies
    are τ-optimum) — the test suite checks each assertion.  Where the
    paper names only cardinalities (τ(R3) = τ(R4) = 7 in Example 1), any
    state of that size works and a canonical one is chosen. *)

open Mj_relation
open Multijoin

val example1 : Database.t
(** Section 3, Example 1: [{AB, BC, DE, FG}].  Satisfies C1; the three
    strategies avoiding Cartesian products cost 570, 570 and 549, while
    [(R1 ⋈ R3) ⋈ (R2 ⋈ R4)] costs 546 — the τ-optimum uses a Cartesian
    product.  The scheme is unconnected. *)

val example1_strategies : (string * Strategy.t) list
(** [S1]–[S4] of Example 1, keyed by the paper's names. *)

val example2_c1_not_c2 : Database.t
(** Example 2 first half = Example 1's database: satisfies C1, violates
    C2 (τ(R1 ⋈ R2) = 10 exceeds both sides). *)

val example2_c2_not_c1 : Database.t
(** Example 2 second half: [{AB, BC, DE}] with τ = 8, 3, 2; satisfies C2
    but violates C1 (τ(R'2 ⋈ R'1) = 7 > 6 = τ(R'2 ⋈ R'3)). *)

val example3 : Database.t
(** Section 4, Example 3: games/students/courses/laboratories
    [{GS, SC, CL}].  All three strategies generate the same number (4)
    of intermediate tuples, so all are τ-optimum — including the linear
    [(GS ⋈ CL) ⋈ SC], which uses a Cartesian product.  C1 holds but C1'
    fails: Theorem 1's hypothesis cannot be weakened to C1. *)

val example4 : Database.t
(** Example 4: same scheme, different state.  τ(S1) = 14, τ(S2) = 12,
    τ(S3) = 11: the unique τ-optimum uses a Cartesian product.  C2 holds
    but C1 fails: Theorem 2's hypothesis needs C1. *)

val example4_strategies : (string * Strategy.t) list
(** [S1 = (GS⋈SC)⋈CL], [S2 = GS⋈(SC⋈CL)], [S3 = (GS⋈CL)⋈SC]. *)

val example5 : Database.t
(** Example 5: majors/students/courses/instructors/departments
    [{MS, SC, CI, ID}].  C1 and C2 hold, C3 fails
    (τ(CI ⋈ ID) > τ(ID)); the unique τ-optimum
    [(MS ⋈ SC) ⋈ (CI ⋈ ID)] is bushy: Theorem 3's hypothesis cannot be
    weakened to C1 ∧ C2. *)

val example5_optimum : Strategy.t
(** [(MS ⋈ SC) ⋈ (CI ⋈ ID)]. *)

val supply_chain : Database.t
(** A small TPC-H-like snowflake — region, nation, customer, orders,
    lineitem — with every join matching a foreign key against the
    referenced relation's key.  All connected subsets are lossless
    joins, so C2 holds (Section 4); C3 does not.  Used by the CASE
    experiment and the extension-join machinery. *)

val supply_chain_fds : Fd.t
(** The key dependencies of {!supply_chain}. *)

val university : Database.t
(** The university registrar of Section 4, one relation wider than
    Example 5: [{MS, SC, CI, ID, CL}] — majors, enrolments, instructors,
    departments and laboratory assignments.  Connected, with join sizes
    both shrinking and growing along the graph, so estimated and actual
    cardinalities split visibly; the [mjoin explain] smoke test runs on
    it. *)

val all : (string * Database.t) list
(** Every scenario keyed by a short name ([ex1], [ex2a], ...,
    [university]). *)
