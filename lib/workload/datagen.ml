open Mj_relation

let check_args rows domain =
  if rows < 0 then invalid_arg "Datagen: negative row count";
  if domain < 1 then invalid_arg "Datagen: domain must be positive"

let tuple_of scheme values =
  Tuple.of_list (List.combine (Attr.Set.elements scheme) values)

let uniform ~rng ~rows ~domain scheme =
  check_args rows domain;
  let width = Attr.Set.cardinal scheme in
  let tuples =
    List.init rows (fun _ ->
        tuple_of scheme
          (List.init width (fun _ -> Value.int (Random.State.int rng domain))))
  in
  Relation.make scheme tuples

(* Zipf sampling by inverse transform over the precomputed CDF. *)
let zipf_sampler ~rng ~domain ~skew =
  if skew < 0.0 then invalid_arg "Datagen.zipf: negative skew";
  let weights =
    Array.init domain (fun k -> 1.0 /. Float.pow (float_of_int (k + 1)) skew)
  in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make domain 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun k w ->
      acc := !acc +. (w /. total);
      cdf.(k) <- !acc)
    weights;
  fun () ->
    let u = Random.State.float rng 1.0 in
    (* Binary search for the first cdf entry >= u. *)
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if cdf.(mid) >= u then search lo mid else search (mid + 1) hi
    in
    search 0 (domain - 1)

let zipf ~rng ~rows ~domain ~skew scheme =
  check_args rows domain;
  let sample = zipf_sampler ~rng ~domain ~skew in
  let width = Attr.Set.cardinal scheme in
  let tuples =
    List.init rows (fun _ ->
        tuple_of scheme (List.init width (fun _ -> Value.int (sample ()))))
  in
  Relation.make scheme tuples

let shuffled_sample ~rng ~take pool =
  let arr = Array.of_list pool in
  let n = Array.length arr in
  for k = n - 1 downto 1 do
    let j = Random.State.int rng (k + 1) in
    let tmp = arr.(k) in
    arr.(k) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list (Array.sub arr 0 take)

let injective ~rng ~rows ~domain scheme =
  check_args rows domain;
  if rows > domain then
    invalid_arg "Datagen.injective: more rows than domain values";
  let width = Attr.Set.cardinal scheme in
  if rows = 0 then Relation.empty scheme
  else begin
    (* Row 0 is the all-zeros spine; the remaining rows draw distinct
       non-zero values per column, so each column stays injective and
       every database built this way has the spine in its global join. *)
    let columns =
      List.init width (fun _ ->
          0 :: shuffled_sample ~rng ~take:(rows - 1) (List.init (domain - 1) (fun v -> v + 1)))
    in
    let tuples =
      List.init rows (fun r ->
          tuple_of scheme
            (List.map (fun col -> Value.int (List.nth col r)) columns))
    in
    Relation.make scheme tuples
  end

let correlated ~rng ~rows ~domain ~noise scheme =
  check_args rows domain;
  if noise < 0.0 || noise > 1.0 then
    invalid_arg "Datagen.correlated: noise outside [0, 1]";
  let tuples =
    List.init rows (fun _ ->
        let base = Random.State.int rng domain in
        let attrs = Attr.Set.elements scheme in
        tuple_of scheme
          (List.mapi
             (fun idx _ ->
               let v =
                 if idx = 0 || Random.State.float rng 1.0 >= noise then base
                 else Random.State.int rng domain
               in
               Value.int v)
             attrs))
  in
  Relation.make scheme tuples

let with_spine gen ~rng ~rows ~domain scheme =
  let r = gen ~rng ~rows ~domain scheme in
  let spine =
    tuple_of scheme
      (List.init (Attr.Set.cardinal scheme) (fun _ -> Value.int 0))
  in
  Relation.add spine r
