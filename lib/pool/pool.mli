(** A small Domain-based worker pool (OCaml 5 stdlib only).

    Built for the embarrassingly parallel trial loops of the bench
    harness and the theorem validators: each trial seeds its own
    [Random.State], touches no shared mutable state, and returns a
    value.  The pool distributes trials over domains with a shared
    atomic counter and merges results {e in task-index order}, so the
    output is deterministic — identical at 1 and at N domains — as long
    as the tasks themselves are (the determinism rule: a task must
    derive all randomness from its own index/seed and must not mutate
    state shared with other tasks).

    With [domains = 1] (or a single task) everything runs in the calling
    domain and no domain is spawned.  If any task raises, the pool joins
    all workers and re-raises one of the exceptions.

    Fault tolerance: a spawned worker killed by the
    [Mj_failpoint.Pool_worker_kill] failpoint (the injected stand-in
    for a crashed domain) is {e not} an error — the pool degrades
    gracefully by finishing every unclaimed or abandoned task in the
    calling domain, so results are identical to a healthy run.  Any
    other exception still propagates. *)

val set_env_domains : int -> unit
(** Register the process-wide default worker count (clamped to ≥ 1).
    Called exactly once by [Mj_engine.Engine.Config.of_env] with the
    value of [MJ_DOMAINS] — the pool itself never reads the
    environment.  The first registration wins; later calls are
    ignored, so the default cannot change mid-process. *)

val default_domains : unit -> int
(** The registered {!set_env_domains} value when one exists, else
    [Domain.recommended_domain_count] capped at 8. *)

val clamp_events : unit -> int
(** How many runs so far had their worker count silently cut down to
    [Domain.recommended_domain_count] — the tell that a "[N]-domain"
    bench on a small machine actually measured fewer workers.  The same
    event is surfaced per-trace as the [pool.domains_clamped] sink
    counter by {!run_traced}. *)

val run : ?domains:int -> ?chunk:int -> (unit -> 'a) array -> 'a array
(** [run tasks] evaluates every task and returns their results indexed
    like the input.  [domains] defaults to {!default_domains}; the
    worker count is additionally capped at
    [Domain.recommended_domain_count] — oversubscribing cores only adds
    GC-synchronization overhead and cannot change results (the clamp is
    recorded in {!clamp_events}).  [chunk] (default 1) is the number of
    consecutive tasks a worker claims per atomic fetch-and-add — raise
    it for floods of sub-millisecond tasks (morsel queues) so the
    shared counter stops being a contention point.  Chunking changes
    only which worker runs a task, never the merged result. *)

val run_traced :
  ?obs:Mj_obs.Obs.sink ->
  ?domains:int ->
  ?chunk:int ->
  (Mj_obs.Obs.sink -> 'a) array ->
  'a array
(** Like {!run}, but each task receives its own child sink
    ([Mj_obs.Obs.fork] of [obs]) to record spans and metrics into, and
    after the parallel section the children are merged back into [obs]
    {e in task-index order} — so the merged trace tree is identical at
    1 and at N domains.  Each child is tagged with the worker index
    that ran it ([Mj_obs.Obs.set_lane]); the Chrome exporter renders
    those tags as per-domain lanes.  With the default [obs = noop]
    every task just gets {!Mj_obs.Obs.noop} and this is exactly
    {!run}.  A task re-run by the crash-recovery pass records its
    spans once, on lane 0 — a killed worker dies before the task body
    starts.  When the requested worker count is clamped to the
    machine's core count, the sink counter [pool.domains_clamped] is
    bumped so the trace itself says the parallelism was reduced.

    If a task raises, the children of every task that did complete are
    still merged (in task-index order, lane attrs intact) before the
    exception propagates — a failing request must not erase the trace
    of its neighbours. *)

val map_array : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
val map_list : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list

val init : ?domains:int -> int -> (int -> 'a) -> 'a array
(** [init n f] is [run [| fun () -> f 0; ...; fun () -> f (n-1) |]] —
    the seed-per-trial idiom. *)
