(* The pool no longer reads MJ_DOMAINS itself: the environment is
   resolved exactly once, by [Mj_engine.Engine.Config.of_env], which
   registers the result here.  First registration wins, so the default
   is stable for the whole process however many configs are built. *)
let env_domains = ref None

let set_env_domains d =
  match !env_domains with
  | None -> env_domains := Some (max 1 d)
  | Some _ -> ()

let default_domains () =
  match !env_domains with
  | Some d -> d
  | None -> max 1 (min 8 (Domain.recommended_domain_count ()))

let run ?domains tasks =
  let n = Array.length tasks in
  let d = match domains with Some d -> max 1 d | None -> default_domains () in
  (* Never oversubscribe cores: extra domains on a saturated machine buy
     no throughput for CPU-bound tasks and pay minor-GC synchronization
     for every domain on every collection.  Results are unaffected —
     the pool merges in task-index order at any worker count. *)
  let d = min d (max 1 (Domain.recommended_domain_count ())) in
  let d = min d n in
  if d <= 1 then Array.map (fun task -> task ()) tasks
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    (* Work-stealing by shared counter: each slot is written by exactly
       one worker, and [Domain.join] publishes those writes before the
       merge below reads them.  Results are merged in task-index order,
       so the output is deterministic whatever the interleaving. *)
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (tasks.(i) ());
          loop ()
        end
      in
      loop ()
    in
    let spawned = Array.init (d - 1) (fun _ -> Domain.spawn worker) in
    let self_exn = (try worker (); None with e -> Some e) in
    let joined_exn =
      Array.fold_left
        (fun acc dom ->
          match Domain.join dom with
          | () -> acc
          | exception e -> ( match acc with None -> Some e | some -> some))
        None spawned
    in
    (match self_exn, joined_exn with
    | Some e, _ | None, Some e -> raise e
    | None, None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

let map_array ?domains f xs = run ?domains (Array.map (fun x () -> f x) xs)

let map_list ?domains f xs =
  Array.to_list (map_array ?domains f (Array.of_list xs))

let init ?domains n f = run ?domains (Array.init n (fun i () -> f i))
