(* The pool no longer reads MJ_DOMAINS itself: the environment is
   resolved exactly once, by [Mj_engine.Engine.Config.of_env], which
   registers the result here.  First registration wins, so the default
   is stable for the whole process however many configs are built. *)
let env_domains = ref None

let set_env_domains d =
  match !env_domains with
  | None -> env_domains := Some (max 1 d)
  | Some _ -> ()

let default_domains () =
  match !env_domains with
  | Some d -> d
  | None -> max 1 (min 8 (Domain.recommended_domain_count ()))

(* Internal driver: tasks receive the index of the worker running them
   (0 = the calling domain, 1..d-1 = spawned domains) so [run_traced]
   can tag trace lanes.  Results never depend on the worker index. *)
let run_w ?domains (tasks : (worker:int -> 'a) array) =
  let n = Array.length tasks in
  let d = match domains with Some d -> max 1 d | None -> default_domains () in
  (* Never oversubscribe cores: extra domains on a saturated machine buy
     no throughput for CPU-bound tasks and pay minor-GC synchronization
     for every domain on every collection.  Results are unaffected —
     the pool merges in task-index order at any worker count. *)
  let d = min d (max 1 (Domain.recommended_domain_count ())) in
  let d = min d n in
  if d <= 1 then Array.map (fun task -> task ~worker:0) tasks
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    (* Work-stealing by shared counter: each slot is written by exactly
       one worker, and [Domain.join] publishes those writes before the
       merge below reads them.  Results are merged in task-index order,
       so the output is deterministic whatever the interleaving. *)
    let worker ~id () =
      let spawned = id > 0 in
      let rec loop ~first =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (* The kill failpoint takes a spawned worker down after it has
             claimed (but not completed) its first task — the worst
             crash point: the index is lost from the shared counter and
             only the recovery pass below can finish it.  The calling
             domain never trips, so a survivor always exists. *)
          if spawned && first then Mj_failpoint.Failpoint.trip Pool_worker_kill;
          results.(i) <- Some (tasks.(i) ~worker:id);
          loop ~first:false
        end
      in
      loop ~first:true
    in
    let spawned = Array.init (d - 1) (fun k -> Domain.spawn (worker ~id:(k + 1))) in
    let self_exn = (try worker ~id:0 (); None with e -> Some e) in
    let joined_exn =
      Array.fold_left
        (fun acc dom ->
          match Domain.join dom with
          | () -> acc
          | exception Mj_failpoint.Failpoint.Injected _ ->
              (* An injected worker kill degrades gracefully: the dead
                 worker's claimed task is re-run serially below. *)
              acc
          | exception e -> ( match acc with None -> Some e | some -> some))
        None spawned
    in
    (match self_exn, joined_exn with
    | Some e, _ | None, Some e -> raise e
    | None, None -> ());
    (* Serial fallback: finish any task a killed worker claimed but
       never completed.  On a healthy run every slot is already filled
       and this pass is a no-op scan. *)
    Array.iteri
      (fun i slot ->
        if slot = None then results.(i) <- Some (tasks.(i) ~worker:0))
      results;
    Array.map (function Some v -> v | None -> assert false) results
  end

let run ?domains tasks =
  run_w ?domains (Array.map (fun task ~worker:_ -> task ()) tasks)

let run_traced ?(obs = Mj_obs.Obs.noop) ?domains tasks =
  if not (Mj_obs.Obs.enabled obs) then
    run ?domains (Array.map (fun task () -> task Mj_obs.Obs.noop) tasks)
  else begin
    (* One child sink per TASK, not per worker: merging in task-index
       order then yields the same span tree at any domain count — only
       the lane attribute (which worker ran the task) varies. *)
    let children = Array.map (fun _ -> Mj_obs.Obs.fork obs) tasks in
    let results =
      run_w ?domains
        (Array.mapi
           (fun i task ~worker ->
             let child = children.(i) in
             Mj_obs.Obs.set_lane child worker;
             task child)
           tasks)
    in
    Array.iter (fun child -> Mj_obs.Obs.merge_child obs child) children;
    results
  end

let map_array ?domains f xs = run ?domains (Array.map (fun x () -> f x) xs)

let map_list ?domains f xs =
  Array.to_list (map_array ?domains f (Array.of_list xs))

let init ?domains n f = run ?domains (Array.init n (fun i () -> f i))
