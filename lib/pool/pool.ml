(* The pool no longer reads MJ_DOMAINS itself: the environment is
   resolved exactly once, by [Mj_engine.Engine.Config.of_env], which
   registers the result here.  First registration wins, so the default
   is stable for the whole process however many configs are built. *)
let env_domains = ref None

let set_env_domains d =
  match !env_domains with
  | None -> env_domains := Some (max 1 d)
  | Some _ -> ()

let default_domains () =
  match !env_domains with
  | Some d -> d
  | None -> max 1 (min 8 (Domain.recommended_domain_count ()))

(* Every run that had to cut its worker count down to the machine's
   recommended domain count bumps this — the process-wide record that
   "4 domains" silently became fewer.  [run_traced] also surfaces the
   event as the [pool.domains_clamped] sink counter so a single bench
   trace is diagnosable without process-global state. *)
let clamped = Atomic.make 0
let clamp_events () = Atomic.get clamped

let core_cap () = max 1 (Domain.recommended_domain_count ())

(* Internal driver: tasks receive the index of the worker running them
   (0 = the calling domain, 1..d-1 = spawned domains) so [run_traced]
   can tag trace lanes.  Results never depend on the worker index. *)
let run_w ?domains ?(chunk = 1) (tasks : (worker:int -> 'a) array) =
  let n = Array.length tasks in
  let d = match domains with Some d -> max 1 d | None -> default_domains () in
  (* Never oversubscribe cores: extra domains on a saturated machine buy
     no throughput for CPU-bound tasks and pay minor-GC synchronization
     for every domain on every collection.  Results are unaffected —
     the pool merges in task-index order at any worker count — but the
     clamp is counted, because a "4-domain" bench on a small machine is
     really measuring fewer workers. *)
  let cap = core_cap () in
  let d =
    if d > cap then begin
      if n > cap then Atomic.incr clamped;
      cap
    end
    else d
  in
  let d = min d n in
  let chunk = max 1 chunk in
  if d <= 1 then Array.map (fun task -> task ~worker:0) tasks
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    (* Work-stealing by shared counter: each slot is written by exactly
       one worker, and [Domain.join] publishes those writes before the
       merge below reads them.  Workers claim [chunk] consecutive tasks
       per fetch-and-add — one atomic operation amortized over a batch,
       which matters when the tasks are sub-millisecond morsels.
       Results are merged in task-index order, so the output is
       deterministic whatever the interleaving. *)
    let worker ~id () =
      let spawned = id > 0 in
      let rec loop ~first =
        let base = Atomic.fetch_and_add next chunk in
        if base < n then begin
          (* The kill failpoint takes a spawned worker down after it has
             claimed (but not completed) its first batch — the worst
             crash point: the indices are lost from the shared counter
             and only the recovery pass below can finish them.  The
             calling domain never trips, so a survivor always exists. *)
          if spawned && first then Mj_failpoint.Failpoint.trip Pool_worker_kill;
          for i = base to min n (base + chunk) - 1 do
            results.(i) <- Some (tasks.(i) ~worker:id)
          done;
          loop ~first:false
        end
      in
      loop ~first:true
    in
    let spawned = Array.init (d - 1) (fun k -> Domain.spawn (worker ~id:(k + 1))) in
    let self_exn = (try worker ~id:0 (); None with e -> Some e) in
    let joined_exn =
      Array.fold_left
        (fun acc dom ->
          match Domain.join dom with
          | () -> acc
          | exception Mj_failpoint.Failpoint.Injected _ ->
              (* An injected worker kill degrades gracefully: the dead
                 worker's claimed tasks are re-run serially below. *)
              acc
          | exception e -> ( match acc with None -> Some e | some -> some))
        None spawned
    in
    (match self_exn, joined_exn with
    | Some e, _ | None, Some e -> raise e
    | None, None -> ());
    (* Serial fallback: finish any task a killed worker claimed but
       never completed.  On a healthy run every slot is already filled
       and this pass is a no-op scan. *)
    Array.iteri
      (fun i slot ->
        if slot = None then results.(i) <- Some (tasks.(i) ~worker:0))
      results;
    Array.map (function Some v -> v | None -> assert false) results
  end

let run ?domains ?chunk tasks =
  run_w ?domains ?chunk (Array.map (fun task ~worker:_ -> task ()) tasks)

let run_traced ?(obs = Mj_obs.Obs.noop) ?domains ?chunk tasks =
  if not (Mj_obs.Obs.enabled obs) then
    run ?domains ?chunk (Array.map (fun task () -> task Mj_obs.Obs.noop) tasks)
  else begin
    (* Surface a clamp on this very run as a sink counter, mirroring the
       process-wide [clamp_events] total. *)
    let requested =
      match domains with Some d -> max 1 d | None -> default_domains ()
    in
    if requested > core_cap () && Array.length tasks > core_cap () then
      Mj_obs.Obs.add obs "pool.domains_clamped" 1;
    (* One child sink per TASK, not per worker: merging in task-index
       order then yields the same span tree at any domain count — only
       the lane attribute (which worker ran the task) varies. *)
    let children = Array.map (fun _ -> Mj_obs.Obs.fork obs) tasks in
    (* Merge even when a task raises: [run_w] joins every spawned
       domain before re-raising, so by the time the exception reaches
       us no worker is still writing into a child sink.  Without the
       protect, one failing task silently dropped the spans and lane
       attrs of every task that had already completed — exactly the
       trace a crash post-mortem needs.  Children of tasks that never
       started are empty forks and merge as no-ops, so the merged
       prefix stays deterministic at any domain count. *)
    let merge () =
      Array.iter (fun child -> Mj_obs.Obs.merge_child obs child) children
    in
    let results =
      try
        run_w ?domains ?chunk
          (Array.mapi
             (fun i task ~worker ->
               let child = children.(i) in
               Mj_obs.Obs.set_lane child worker;
               task child)
             tasks)
      with e ->
        merge ();
        raise e
    in
    merge ();
    results
  end

let map_array ?domains f xs = run ?domains (Array.map (fun x () -> f x) xs)

let map_list ?domains f xs =
  Array.to_list (map_array ?domains f (Array.of_list xs))

let init ?domains n f = run ?domains (Array.init n (fun i -> fun () -> f i))
