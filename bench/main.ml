(* Benchmark and experiment harness.

   One experiment per reproduced table/figure/claim of the paper (see
   DESIGN.md section 4 and EXPERIMENTS.md).  Running with no arguments
   executes everything; passing experiment ids (EX1 THM2 PERF ...) runs a
   subset.  All randomness is seeded: the output is identical from run to
   run. *)

open Mj_relation
open Mj_hypergraph
open Multijoin
open Mj_optimizer
module Scenarios = Mj_workload.Scenarios
module Dbgen = Mj_workload.Dbgen
module Yannakakis = Mj_yannakakis.Yannakakis
module Pool = Mj_pool.Pool
module Kernel_bench = Mj_benchkit.Kernel_bench
module Frame_bench = Mj_benchkit.Frame_bench
module Plan_bench = Mj_benchkit.Plan_bench
module Par_bench = Mj_benchkit.Par_bench
module Wcoj_bench = Mj_benchkit.Wcoj_bench
module Yann_bench = Mj_benchkit.Yann_bench
module Serve_bench = Mj_benchkit.Serve_bench
module Engine = Mj_engine.Engine

(* Set by the --quick flag: trims the KERNEL grid to CI-smoke scale. *)
let quick = ref false

(* The process-wide engine configuration, resolved once in [main] from
   the uniform CLI flags (--engine / --domains / --policy) with the
   environment as fallback — the same precedence as the mjoin CLI. *)
let config = ref None

let get_config () =
  match !config with Some c -> c | None -> Engine.Config.of_env ()

let config_domains () = (get_config ()).Engine.Config.domains

let section id title =
  Printf.printf "\n%s\n[%s] %s\n%s\n" (String.make 74 '=') id title
    (String.make 74 '=')

let check name ok = Printf.printf "  %-58s %s\n" name (if ok then "OK" else "FAIL")

let expect name ~expected ~actual =
  Printf.printf "  %-46s expected %-8d got %-8d %s\n" name expected actual
    (if expected = actual then "OK" else "FAIL")

(* ------------------------------------------------------------------ *)
(* EX1: Example 1 (Section 3)                                           *)
(* ------------------------------------------------------------------ *)

let ex1 () =
  section "EX1" "Example 1: C1 holds, yet the optimum uses a Cartesian product";
  let db = Scenarios.example1 in
  List.iter
    (fun (name, s) ->
      let steps = Cost.step_costs db s in
      Printf.printf "  %-3s %-28s steps %-14s tau = %d\n" name
        (Strategy.to_string s)
        (String.concat "+" (List.map (fun (_, c) -> string_of_int c) steps))
        (Cost.tau db s))
    Scenarios.example1_strategies;
  let tau name = Cost.tau db (List.assoc name Scenarios.example1_strategies) in
  expect "tau(S1)" ~expected:570 ~actual:(tau "S1");
  expect "tau(S2)" ~expected:570 ~actual:(tau "S2");
  expect "tau(S3)" ~expected:549 ~actual:(tau "S3");
  expect "tau(S4)" ~expected:546 ~actual:(tau "S4");
  let summary = Conditions.summarize db in
  check "C1 holds" summary.c1;
  let best = Optimal.optimum_exn db in
  expect "global optimum" ~expected:546 ~actual:best.cost;
  check "optimum uses a Cartesian product" (Strategy.uses_cartesian best.strategy);
  expect "best avoiding Cartesian products"
    ~expected:549
    ~actual:(Optimal.optimum_exn ~subspace:Enumerate.Cp_free db).cost

(* ------------------------------------------------------------------ *)
(* EX2: Example 2 — C1 and C2 are independent                           *)
(* ------------------------------------------------------------------ *)

let ex2 () =
  section "EX2" "Example 2: conditions C1 and C2 are independent";
  let a = Conditions.summarize Scenarios.example2_c1_not_c2 in
  let b = Conditions.summarize Scenarios.example2_c2_not_c1 in
  Printf.printf "  first database  (Example 1's): C1:%b C2:%b\n" a.c1 a.c2;
  Printf.printf "  second database (AB/BC/DE)   : C1:%b C2:%b\n" b.c1 b.c2;
  check "C1 does not imply C2" (a.c1 && not a.c2);
  check "C2 does not imply C1" (b.c2 && not b.c1);
  (* tau(R'1 ⋈ R'2) = 7 as stated *)
  let db = Scenarios.example2_c2_not_c1 in
  let j =
    Relation.natural_join
      (Database.find db (Scheme.of_string "AB"))
      (Database.find db (Scheme.of_string "BC"))
  in
  expect "tau(R'1 x R'2)" ~expected:7 ~actual:(Relation.cardinality j)

(* ------------------------------------------------------------------ *)
(* EX3: Example 3 — Theorem 1's C1' cannot be weakened to C1            *)
(* ------------------------------------------------------------------ *)

let ex3 () =
  section "EX3" "Example 3: an optimal linear strategy may use a CP under C1";
  let db = Scenarios.example3 in
  List.iter
    (fun src ->
      let s = Strategy.of_string src in
      let first = match Cost.step_costs db s with (_, c) :: _ -> c | [] -> 0 in
      Printf.printf "  %-20s intermediate %-4d tau %-4d %s\n" src first
        (Cost.tau db s)
        (if Strategy.uses_cartesian s then "[CP]" else ""))
    [ "(GS * SC) * CL"; "GS * (SC * CL)"; "(GS * CL) * SC" ];
  let optima = Optimal.all_optima db in
  expect "number of tau-optimal strategies" ~expected:3
    ~actual:(List.length optima);
  check "a tau-optimal linear strategy uses a CP"
    (List.exists
       (fun (r : Optimal.result) ->
         Strategy.is_linear r.strategy && Strategy.uses_cartesian r.strategy)
       optima);
  let s = Conditions.summarize db in
  check "C1 holds" s.c1;
  check "C1' fails" (not s.c1_strict)

(* ------------------------------------------------------------------ *)
(* EX4: Example 4 — Theorem 2 needs C1                                  *)
(* ------------------------------------------------------------------ *)

let ex4 () =
  section "EX4" "Example 4: without C1, avoiding CPs misses the optimum";
  let db = Scenarios.example4 in
  List.iter
    (fun (name, s) ->
      Printf.printf "  %-3s %-20s tau = %d\n" name (Strategy.to_string s)
        (Cost.tau db s))
    Scenarios.example4_strategies;
  let tau name = Cost.tau db (List.assoc name Scenarios.example4_strategies) in
  expect "tau(S1)" ~expected:14 ~actual:(tau "S1");
  expect "tau(S2)" ~expected:12 ~actual:(tau "S2");
  expect "tau(S3)" ~expected:11 ~actual:(tau "S3");
  let best = Optimal.optimum_exn db in
  check "S3 (with its CP) is the optimum"
    (best.cost = 11 && Strategy.uses_cartesian best.strategy);
  let s = Conditions.summarize db in
  check "C2 holds" s.c2;
  check "C1 fails" (not s.c1)

(* ------------------------------------------------------------------ *)
(* EX5: Example 5 — Theorem 3 needs C3                                  *)
(* ------------------------------------------------------------------ *)

let ex5 () =
  section "EX5" "Example 5: under C1+C2 only, the unique optimum is bushy";
  let db = Scenarios.example5 in
  let all =
    Enumerate.all (Database.schemes db)
    |> List.map (fun s -> (Cost.tau db s, s))
    |> List.sort compare
  in
  List.iteri
    (fun i (c, s) ->
      if i < 4 then
        Printf.printf "  %d. tau %-4d %s %s\n" (i + 1) c (Strategy.to_string s)
          (if Strategy.is_linear s then "[linear]" else "[bushy]"))
    all;
  let optima = Optimal.all_optima db in
  expect "unique optimum" ~expected:1 ~actual:(List.length optima);
  let best = List.hd optima in
  check "it is (MS * SC) * (CI * ID)"
    (Strategy.equal_commutative best.strategy Scenarios.example5_optimum);
  check "it is bushy and CP-free"
    ((not (Strategy.is_linear best.strategy))
    && not (Strategy.uses_cartesian best.strategy));
  let s = Conditions.summarize db in
  check "C1 and C2 hold" (s.c1 && s.c2);
  check "C3 fails" (not s.c3);
  let ci_id =
    Relation.natural_join
      (Database.find db (Scheme.of_string "CI"))
      (Database.find db (Scheme.of_string "DI"))
  in
  Printf.printf "  tau(CI x ID) = %d > tau(ID) = %d (the C3 violation)\n"
    (Relation.cardinality ci_id)
    (Relation.cardinality (Database.find db (Scheme.of_string "DI")))

(* ------------------------------------------------------------------ *)
(* FIG: the transformations of Figures 1-6                              *)
(* ------------------------------------------------------------------ *)

let fig () =
  section "FIG" "Figures 1-6: pluck, graft and the proof transformations";
  (* Figures 1-2: pluck and graft are inverse, and preserve the result. *)
  let rng = Random.State.make [| 99 |] in
  let d4 = Querygraph.chain 4 in
  let db4 = Dbgen.superkey_db ~rng ~rows:6 ~domain:9 d4 in
  let schemes = Scheme.Set.elements d4 in
  let s0 = Strategy.left_deep schemes in
  let target = Scheme.Set.singleton (List.nth schemes 2) in
  let plucked = Transform.pluck s0 target in
  let back =
    Transform.graft plucked ~above:(Strategy.schemes plucked)
      (Strategy.leaf (List.nth schemes 2))
  in
  check "Fig 1: pluck removes exactly one leaf"
    (Strategy.size plucked = Strategy.size s0 - 1);
  check "Fig 2: grafting it back evaluates the same database"
    (Relation.equal (Cost.eval db4 back) (Database.join_all db4));

  (* Figure 3 / Theorem 1: on a C1'-database, removing a Cartesian
     product from a linear strategy strictly lowers tau. *)
  let with_cp =
    Strategy.left_deep
      [ List.nth schemes 0; List.nth schemes 2; List.nth schemes 1;
        List.nth schemes 3 ]
  in
  check "the constructed linear strategy uses a CP"
    (Strategy.uses_cartesian with_cp);
  let t1 =
    (* Move the CP-offending relation next to the one it links with. *)
    Transform.transfer with_cp
      ~subtree:(Scheme.Set.singleton (List.nth schemes 2))
      ~above:(Scheme.Set.singleton (List.nth schemes 1))
  in
  Printf.printf "  before: %-40s tau = %d\n" (Strategy.to_string with_cp)
    (Cost.tau db4 with_cp);
  Printf.printf "  after : %-40s tau = %d\n" (Strategy.to_string t1)
    (Cost.tau db4 t1);
  check "Fig 3: the transformation strictly lowers tau (C1' held)"
    (Cost.tau db4 t1 < Cost.tau db4 with_cp);

  (* Figures 4-5 / Lemmas 2-3 on Example 1: pulling a component of the
     unconnected child next to the connected child never raises tau. *)
  let db1 = Scenarios.example1 in
  let s = Strategy.of_string "BC * ((AB * DE) * FG)" in
  let s' =
    Transform.transfer s
      ~subtree:(Scheme.Set.of_strings [ "AB" ])
      ~above:(Scheme.Set.of_strings [ "BC" ])
  in
  Printf.printf "  Lemma 2 move: %s (tau %d)  ->  %s (tau %d)\n"
    (Strategy.to_string s) (Cost.tau db1 s) (Strategy.to_string s')
    (Cost.tau db1 s');
  check "Fig 4-5: tau(S') <= tau(S)" (Cost.tau db1 s' <= Cost.tau db1 s);

  (* Figure 6 / Lemma 6: under C3, repeatedly transferring subtrees
     toward one child linearizes an optimal connected strategy without
     changing tau — equivalently, the cheapest connected strategy costs
     exactly as much as the cheapest linear connected one.  The lemma
     says nothing about non-optimal strategies (a transfer may well
     improve those). *)
  let best_connected = Optimal.optimum_exn ~subspace:Enumerate.Cp_free db4 in
  let best_linear_connected =
    Optimal.optimum_exn ~subspace:Enumerate.Linear_cp_free db4
  in
  Printf.printf
    "  Lemma 6: best connected tau = %d, best linear connected tau = %d\n"
    best_connected.cost best_linear_connected.cost;
  check "Fig 6: linearization preserves the connected optimum (C3)"
    (best_connected.cost = best_linear_connected.cost)

(* ------------------------------------------------------------------ *)
(* THM1-3: Monte-Carlo theorem validation per data regime               *)
(* ------------------------------------------------------------------ *)

type tally = {
  mutable applicable : int;
  mutable holds : int;
  mutable refuted : int;
  mutable vacuous_and_fails : int;
}

let fresh_tally () =
  { applicable = 0; holds = 0; refuted = 0; vacuous_and_fails = 0 }

let record tally status conclusion =
  match status with
  | Theorems.Holds ->
      tally.applicable <- tally.applicable + 1;
      tally.holds <- tally.holds + 1
  | Theorems.Refuted ->
      tally.applicable <- tally.applicable + 1;
      tally.refuted <- tally.refuted + 1
  | Theorems.Vacuous _ ->
      if not conclusion then
        tally.vacuous_and_fails <- tally.vacuous_and_fails + 1

let theorem_experiment id which =
  section id
    (Printf.sprintf
       "Theorem %d on generated databases (applicable => conclusion)" which);
  Printf.printf "  %-10s %-8s %-11s %-6s %-8s %-22s\n" "regime" "samples"
    "applicable" "holds" "refuted" "hyp-fails & concl-fails";
  let samples = 30 in
  List.iter
    (fun (regime_name, gen) ->
      let tally = fresh_tally () in
      (* Trials fan out over domains; each derives everything from its
         own seed and results merge in seed order, so the tally (and
         the printed table) is identical at any domain count. *)
      let outcomes =
        Pool.init samples (fun i ->
            let seed = i + 1 in
            let rng = Random.State.make [| seed; which |] in
            let n = 4 + (seed mod 2) in
            let d = Querygraph.random ~extra_edge_prob:0.3 ~rng n in
            let db : Database.t = gen ~rng d in
            let r = Theorems.verify db in
            match which with
            | 1 -> (r.theorem1, r.theorem1_conclusion)
            | 2 -> (r.theorem2, r.theorem2_conclusion)
            | _ -> (r.theorem3, r.theorem3_conclusion))
      in
      Array.iter
        (fun (status, conclusion) -> record tally status conclusion)
        outcomes;
      Printf.printf "  %-10s %-8d %-11d %-6d %-8d %-22d\n" regime_name samples
        tally.applicable tally.holds tally.refuted tally.vacuous_and_fails;
      if tally.refuted > 0 then check "NO REFUTATIONS" false)
    [
      ("superkey", fun ~rng d -> Dbgen.superkey_db ~rng ~rows:5 ~domain:9 d);
      ("uniform", fun ~rng d -> Dbgen.uniform_db ~rng ~rows:5 ~domain:3 d);
      ("skewed", fun ~rng d -> Dbgen.skewed_db ~rng ~rows:5 ~domain:4 ~skew:1.2 d);
    ];
  print_endline
    "  (refuted = 0 everywhere is the reproduction of the theorem; the\n\
    \   last column shows the conclusion really failing once hypotheses do)"

(* ------------------------------------------------------------------ *)
(* SK: Section 4's semantic sufficient conditions                       *)
(* ------------------------------------------------------------------ *)

let sk () =
  section "SK" "Section 4: superkeys give C3; lossless joins give C2";
  (* Superkey joins => C3, on injective data over several shapes. *)
  let shapes = [ ("chain", Querygraph.chain 4); ("star", Querygraph.star 4) ] in
  List.iter
    (fun (name, d) ->
      let ok = ref true in
      for seed = 1 to 20 do
        let rng = Random.State.make [| seed; 77 |] in
        let db = Dbgen.superkey_db ~rng ~rows:5 ~domain:9 d in
        if not (Conditions.holds_c3 db) then ok := false
      done;
      check (Printf.sprintf "injective %s databases all satisfy C3" name) !ok)
    shapes;
  (* Declared FDs: the chase certifies the lossless-join hypothesis, and
     C2 follows on data satisfying those FDs (the star schema). *)
  let d = Scheme.Set.of_strings [ "OCPS"; "CN"; "PQ"; "ST" ] in
  let fds = Fd.of_strings [ ("C", "N"); ("P", "Q"); ("S", "T"); ("O", "CPS") ] in
  check "star schema: no nontrivial lossy joins (chase)"
    (Semantic.no_nontrivial_lossy_joins fds d);
  check "star schema: joins NOT all on superkeys"
    (not (Semantic.all_joins_on_superkeys fds d));
  let sales =
    Relation.of_rows "OCPS"
      (List.init 12 (fun o ->
           [ Value.int o; Value.int (o mod 3); Value.int (o mod 4);
             Value.int (o mod 2) ]))
  in
  let db =
    Database.of_relations
      [
        sales;
        Relation.of_rows "CN" (List.init 3 (fun c -> [ Value.int c; Value.int c ]));
        Relation.of_rows "PQ" (List.init 4 (fun p -> [ Value.int p; Value.int p ]));
        Relation.of_rows "ST" (List.init 2 (fun s -> [ Value.int s; Value.int s ]));
      ]
  in
  let summary = Conditions.summarize db in
  check "its data satisfies C2" summary.c2;
  check "and fails C3 (fact side not keyed)" (not summary.c3)

(* ------------------------------------------------------------------ *)
(* SPACE: strategy-space sizes                                          *)
(* ------------------------------------------------------------------ *)

let space () =
  section "SPACE" "Strategy-space sizes per query shape (Section 1 / ref [14])";
  List.iter
    (fun (name, shape, sizes) ->
      Printf.printf "  %s:\n" name;
      Printf.printf "  %-4s %-12s %-10s %-9s %-15s %-10s\n" "n" "all" "linear"
        "cp-free" "linear-cp-free" "ccp-pairs";
      List.iter
        (fun (row : Search_space.row) ->
          Printf.printf "  %-4d %-12d %-10d %-9d %-15d %-10d\n" row.n
            row.all_strategies row.linear_strategies row.cp_free
            row.linear_cp_free row.ccp_pairs)
        (Search_space.table ~shape sizes))
    [
      ("chain", Querygraph.chain, [ 2; 3; 4; 5; 6; 7; 8; 9; 10 ]);
      ("star", Querygraph.star, [ 2; 3; 4; 5; 6; 7; 8; 9; 10 ]);
      ("cycle", Querygraph.cycle, [ 3; 4; 5; 6; 7; 8; 9; 10 ]);
      ("clique", Querygraph.clique, [ 2; 3; 4; 5; 6; 7; 8 ]);
    ];
  (* Closed forms vs measurement. *)
  check "chain ccp-pairs match (n^3 - n)/6"
    (List.for_all
       (fun n ->
         Search_space.measured_pairs (Querygraph.chain n)
         = Search_space.chain_pairs n)
       [ 2; 4; 6; 8; 10 ]);
  check "star ccp-pairs match (n-1) 2^(n-2)"
    (List.for_all
       (fun n ->
         Search_space.measured_pairs (Querygraph.star n)
         = Search_space.star_pairs n)
       [ 2; 4; 6; 8; 10 ]);
  check "clique ccp-pairs match (3^n - 2^(n+1) + 1)/2"
    (List.for_all
       (fun n ->
         Search_space.measured_pairs (Querygraph.clique n)
         = Search_space.clique_pairs n)
       [ 2; 4; 6; 8 ]);
  check "paper's 15 strategies for four relations" (Enumerate.count_all 4 = 15);
  check "paper's 12 linear strategies for four relations"
    (Enumerate.count_linear 4 = 12)

(* ------------------------------------------------------------------ *)
(* GAMMA: best linear vs best bushy, per regime                         *)
(* ------------------------------------------------------------------ *)

let gamma () =
  section "GAMMA"
    "Cheapest linear vs cheapest bushy strategy (actual tau, exact DP)";
  Printf.printf "  %-8s %-10s %-9s %-11s %-11s %-9s\n" "shape" "regime"
    "samples" "mean ratio" "max ratio" "linear=opt";
  let samples = 15 in
  List.iter
    (fun (shape_name, shape) ->
      List.iter
        (fun (regime_name, gen) ->
          (* Seed-per-trial fan-out; the prepend fold rebuilds the exact
             descending-seed list the sequential loop accumulated, so the
             float summation order (and the output) is unchanged. *)
          let results =
            Pool.init samples (fun i ->
                let seed = i + 1 in
                let rng =
                  Random.State.make [| seed; 7; Hashtbl.hash shape_name |]
                in
                let db : Database.t = gen ~rng (shape 6) in
                let best_all = (Optimal.optimum_exn db).cost in
                let best_linear =
                  (Optimal.optimum_exn ~subspace:Enumerate.Linear db).cost
                in
                let ratio =
                  if best_all = 0 then 1.0
                  else float_of_int best_linear /. float_of_int best_all
                in
                (ratio, best_linear = best_all))
          in
          let ratios = Array.fold_left (fun acc (r, _) -> r :: acc) [] results in
          let optimal =
            Array.fold_left (fun n (_, hit) -> if hit then n + 1 else n) 0 results
          in
          let mean = List.fold_left ( +. ) 0.0 ratios /. float_of_int samples in
          let worst = List.fold_left Float.max 1.0 ratios in
          Printf.printf "  %-8s %-10s %-9d %-11.3f %-11.3f %d/%d\n" shape_name
            regime_name samples mean worst optimal samples)
        [
          ("superkey", fun ~rng d -> Dbgen.superkey_db ~rng ~rows:6 ~domain:10 d);
          ("uniform", fun ~rng d -> Dbgen.uniform_db ~rng ~rows:6 ~domain:3 d);
          ( "skewed",
            fun ~rng d -> Dbgen.skewed_db ~rng ~rows:6 ~domain:4 ~skew:1.5 d );
        ])
    [
      ("chain", Querygraph.chain);
      ("cycle", Querygraph.cycle);
      ("star", Querygraph.star);
    ];
  print_endline
    "  (under the superkey regime the ratio is 1 — Theorem 3; under skew\n\
    \   the linear-only optimizer can lose, the GAMMA observation [9])"

(* ------------------------------------------------------------------ *)
(* MONO: monotone strategies (Section 5)                                *)
(* ------------------------------------------------------------------ *)

let mono () =
  section "MONO" "Section 5: monotone decreasing / increasing strategies";
  let samples = 15 in
  let dec = ref 0 in
  for seed = 1 to samples do
    let rng = Random.State.make [| seed; 31 |] in
    let d = Querygraph.random ~extra_edge_prob:0.3 ~rng 5 in
    let db = Dbgen.superkey_db ~rng ~rows:5 ~domain:9 d in
    if Monotone.exists_optimal_linear_monotone_decreasing db then incr dec
  done;
  Printf.printf
    "  superkey (C3) databases with a monotone-decreasing linear optimum: \
     %d/%d\n"
    !dec samples;
  check "all of them" (!dec = samples);
  let inc = ref 0 in
  for seed = 1 to samples do
    let rng = Random.State.make [| seed; 32 |] in
    let db =
      Dbgen.consistent_acyclic_db ~rng ~rows:5 ~domain:4 (Querygraph.chain 4)
    in
    if Monotone.all_cp_free_strategies_monotone_increasing db then incr inc
  done;
  Printf.printf
    "  gamma-acyclic consistent databases where every CP-free strategy is\n\
    \  monotone increasing (C4): %d/%d\n"
    !inc samples;
  check "all of them" (!inc = samples)

(* ------------------------------------------------------------------ *)
(* SETOP: union and intersection strategies (Section 5)                 *)
(* ------------------------------------------------------------------ *)

let setop () =
  section "SETOP" "Section 5: intersection satisfies C3; union experiments";
  let samples = 200 in
  let linear_optimal = ref 0 in
  let ascending_optimal = ref 0 in
  let union_linear_optimal = ref 0 in
  for seed = 1 to samples do
    let rng = Random.State.make [| seed; 71 |] in
    let k = 3 + Random.State.int rng 3 in
    let family =
      Setops.of_ints
        (List.init k (fun i ->
             let size = 1 + Random.State.int rng 9 in
             ( Printf.sprintf "X%d" i,
               List.init size (fun _ -> Random.State.int rng 12) )))
    in
    let _, best = Setops.optimum Setops.Inter family in
    let _, best_linear = Setops.optimum_linear Setops.Inter family in
    if best = best_linear then incr linear_optimal;
    if Setops.tau Setops.Inter family (Setops.ascending_linear family) = best
    then incr ascending_optimal;
    let _, u_best = Setops.optimum Setops.Union family in
    let _, u_linear = Setops.optimum_linear Setops.Union family in
    if u_best = u_linear then incr union_linear_optimal
  done;
  Printf.printf "  intersection: best linear = global optimum    %d/%d\n"
    !linear_optimal samples;
  check "Theorem 3 for intersections (100%)" (!linear_optimal = samples);
  Printf.printf "  intersection: ascending-size heuristic optimal %d/%d\n"
    !ascending_optimal samples;
  Printf.printf "  union: best linear = global optimum           %d/%d\n"
    !union_linear_optimal samples;
  check "union: linear orders are NOT always optimal"
    (!union_linear_optimal < samples);
  (* A minimal witness: overlapping sets must be united with each other
     first, which a linear spine cannot arrange for two disjoint pairs. *)
  let family =
    Setops.of_ints
      [ ("A", [ 4 ]); ("B", [ 1 ]); ("C", [ 2; 5 ]); ("D", [ 2; 3; 5 ]) ]
  in
  let _, u_best = Setops.optimum Setops.Union family in
  let _, u_lin = Setops.optimum_linear Setops.Union family in
  Printf.printf
    "  witness A={4} B={1} C={2,5} D={2,3,5}: bushy optimum %d, best linear %d\n"
    u_best u_lin;
  check "witness separates the spaces" (u_best = 10 && u_lin = 11);
  print_endline
    "  (this answers the paper's closing union question negatively: C4\n\
    \   alone, unlike C3, does not yield a Theorem 3 — the optimum union\n\
    \   tree can be properly bushy, uniting overlapping sets pairwise)"

(* ------------------------------------------------------------------ *)
(* YANN: is Yannakakis's strategy tau-optimal? (Section 5)              *)
(* ------------------------------------------------------------------ *)

let yann () =
  section "YANN" "Section 5: tau of Yannakakis's strategy vs the optimum";
  Printf.printf "  %-8s %-4s %-9s %-12s %-10s\n" "shape" "n" "samples"
    "mean ratio" "optimal";
  let samples = 15 in
  List.iter
    (fun (shape_name, shape, n) ->
      let ratios = ref [] in
      let opt = ref 0 in
      for seed = 1 to samples do
        let rng = Random.State.make [| seed; 81 |] in
        let db = Dbgen.uniform_db ~rng ~rows:6 ~domain:3 (shape n) in
        let reduced = Yannakakis.full_reduce db in
        let yann_tau = Yannakakis.tau_after_reduction db in
        let best = (Optimal.optimum_exn reduced).cost in
        let ratio =
          if best = 0 then 1.0 else float_of_int yann_tau /. float_of_int best
        in
        ratios := ratio :: !ratios;
        if yann_tau = best then incr opt
      done;
      let mean = List.fold_left ( +. ) 0.0 !ratios /. float_of_int samples in
      Printf.printf "  %-8s %-4d %-9d %-12.3f %d/%d\n" shape_name n samples
        mean !opt samples)
    [
      ("chain", Querygraph.chain, 4);
      ("chain", Querygraph.chain, 6);
      ("star", Querygraph.star, 5);
    ];
  print_endline
    "  (ratio 1.000 would answer the open question positively on these\n\
    \   populations; ratios above 1 show Yannakakis's order is lossless\n\
    \   but not always tau-optimal)";
  print_newline ();
  print_endline
    "  Gated leg: semijoin program vs best binary plan on planted\n\
    \  dangling-star workloads (bit-identical, engine-certified, top-k)";
  let t = Yann_bench.run ~quick:!quick () in
  Printf.printf "  cores: %d%s\n" t.cores
    (if !quick then " (quick grid)" else "");
  Printf.printf
    "  %-10s %-8s %-7s %-9s %-11s %-11s %-8s %-10s %-9s %-7s %-6s %-5s %-5s\n"
    "shape" "n" "fanout" "matching" "binary ms" "yann ms" "speedup" "tau-bin"
    "tau-yann" "floor" "equal" "cert" "topk";
  List.iter
    (fun (r : Yann_bench.row) ->
      Printf.printf
        "  %-10s %-8d %-7d %-9d %-11.3f %-11.3f %-8s %-10d %-9d %-7s %-6s \
         %-5s %s\n"
        r.shape r.n r.fanout r.matching r.binary_ms r.yann_ms
        (Printf.sprintf "%.2fx" r.speedup)
        r.tau_binary r.tau_yann
        (match r.speedup_floor with
        | Some f -> Printf.sprintf "%.1fx" f
        | None -> "-")
        (if r.equal then "OK" else "FAIL")
        (if r.cert_ok then "OK" else "FAIL")
        (if r.topk_ok then "OK" else "FAIL"))
    t.rows;
  check "yann result is bit-identical to the binary fold on every row"
    (List.for_all (fun (r : Yann_bench.row) -> r.equal) t.rows);
  check "engine matrix {seed,frame} x {1,4} domains agrees on result and tau"
    (List.for_all (fun (r : Yann_bench.row) -> r.cert_ok) t.rows);
  check "top-k streams the sorted prefix without materializing the join"
    (List.for_all
       (fun (r : Yann_bench.row) -> r.topk_ok && r.topk_probes < r.binary_probes)
       t.rows);
  check "every floored row meets its speedup floor"
    (List.for_all Yann_bench.floor_ok t.rows);
  Printf.printf "  BENCH_JSON %s\n"
    (Mj_obs.Json.to_string (Yann_bench.bench_json t));
  Yann_bench.write_file "BENCH_YANN.json" t;
  print_endline "  (full report written to BENCH_YANN.json)";
  if Yann_bench.failures t <> [] then exit 1

(* ------------------------------------------------------------------ *)
(* EST: does estimate-driven optimization find good plans?              *)
(* ------------------------------------------------------------------ *)

let est () =
  section "EST"
    "Plan regret of estimate-driven DP vs the true tau-optimum";
  Printf.printf "  %-8s %-10s %-9s %-22s %-22s\n" "shape" "regime" "samples"
    "uniform: mean/max/opt" "MCV(8): mean/max/opt";
  let samples = 15 in
  let run_estimator db d make_oracle =
    let oracle = make_oracle db in
    let chosen =
      match Dpsize.plan ~allow_cp:true ~oracle d with
      | Some r -> r.Optimal.strategy
      | None -> assert false
    in
    let opt = (Optimal.optimum_exn db).cost in
    let actual = Cost.tau db chosen in
    let regret =
      if opt = 0 then 1.0 else float_of_int actual /. float_of_int opt
    in
    (regret, actual = opt)
  in
  List.iter
    (fun (shape_name, shape) ->
      List.iter
        (fun (regime_name, gen) ->
          let summarize make_oracle =
            (* Same fan-out/merge discipline as GAMMA: per-seed tasks,
               results folded back in the sequential loop's order. *)
            let results =
              Pool.init samples (fun i ->
                  let seed = i + 1 in
                  let rng =
                    Random.State.make [| seed; 9; Hashtbl.hash shape_name |]
                  in
                  let d = shape 6 in
                  let db : Database.t = gen ~rng d in
                  run_estimator db d make_oracle)
            in
            let regrets =
              Array.fold_left (fun acc (r, _) -> r :: acc) [] results
            in
            let hits =
              Array.fold_left (fun n (_, h) -> if h then n + 1 else n) 0 results
            in
            let mean =
              List.fold_left ( +. ) 0.0 regrets /. float_of_int samples
            in
            let worst = List.fold_left Float.max 1.0 regrets in
            Printf.sprintf "%.3f/%.3f/%d" mean worst hits
          in
          let uniform_cell =
            summarize (fun db -> Estimate.of_catalog (Catalog.of_database db))
          in
          let mcv_cell = summarize (fun db -> Estimate.of_database_mcv ~k:8 db) in
          Printf.printf "  %-8s %-10s %-9d %-22s %-22s\n" shape_name regime_name
            samples uniform_cell mcv_cell)
        [
          ("superkey", fun ~rng d -> Dbgen.superkey_db ~rng ~rows:6 ~domain:10 d);
          ("uniform", fun ~rng d -> Dbgen.uniform_db ~rng ~rows:6 ~domain:3 d);
          ( "skewed",
            fun ~rng d -> Dbgen.skewed_db ~rng ~rows:6 ~domain:4 ~skew:1.5 d );
        ])
    [ ("chain", Querygraph.chain); ("cycle", Querygraph.cycle) ];
  print_endline
    "  (cells are mean regret / max regret / runs hitting the optimum.\n\
    \   The uniformity assumption the paper criticises [4] cuts both\n\
    \   ways — it underestimates skewed hot-value joins and overestimates\n\
    \   joins of random injective columns — so uniform-statistics plans\n\
    \   run >2x off the true optimum even when Theorem 3 guarantees a\n\
    \   linear plan IS optimal.  End-biased MCV statistics shrink but do\n\
    \   not close the gap: the case for schema-level guarantees)"

(* ------------------------------------------------------------------ *)
(* RAND: randomized search vs exact DP                                  *)
(* ------------------------------------------------------------------ *)

let rand () =
  section "RAND"
    "Iterative improvement / simulated annealing vs exact DP (est. cost)";
  Printf.printf "  %-8s %-9s %-14s %-14s %-12s\n" "query" "samples"
    "II mean ratio" "SA mean ratio" "II optimal";
  let samples = 10 in
  List.iter
    (fun (name, d) ->
      let ii_ratios = ref [] and sa_ratios = ref [] and ii_hits = ref 0 in
      for seed = 1 to samples do
        let rng = Random.State.make [| seed; 10 |] in
        let cat =
          Catalog.synthetic
            (List.map
               (fun s -> (s, 1 lsl (3 + Random.State.int rng 5), []))
               (Scheme.Set.elements d))
        in
        let oracle = Estimate.of_catalog cat in
        let opt =
          match Optimal.optimum_with_oracle ~oracle d with
          | Some r -> r.Optimal.cost
          | None -> assert false
        in
        let ii =
          Random_search.iterative_improvement ~rng ~oracle ~restarts:8 d
        in
        let sa =
          Random_search.simulated_annealing ~rng ~oracle ~cooling:0.85
            ~steps_per_temperature:15 d
        in
        let ratio c = if opt = 0 then 1.0 else float_of_int c /. float_of_int opt in
        ii_ratios := ratio ii.Optimal.cost :: !ii_ratios;
        sa_ratios := ratio sa.Optimal.cost :: !sa_ratios;
        if ii.Optimal.cost = opt then incr ii_hits
      done;
      let mean rs = List.fold_left ( +. ) 0.0 !rs /. float_of_int samples in
      Printf.printf "  %-8s %-9d %-14.3f %-14.3f %d/%d\n" name samples
        (mean ii_ratios) (mean sa_ratios) !ii_hits samples)
    [
      ("chain8", Querygraph.chain 8);
      ("cycle8", Querygraph.cycle 8);
      ("clique7", Querygraph.clique 7);
    ];
  print_endline
    "  (the Swami [21,22] setting: local search trades a small cost gap\n\
    \   for polynomial time on queries where DP is infeasible)"

(* ------------------------------------------------------------------ *)
(* PIPE: pipelining linear strategies (Section 1's motivation)          *)
(* ------------------------------------------------------------------ *)

let pipe () =
  section "PIPE"
    "Pipelined vs materializing execution of linear strategies";
  let module Exec = Mj_engine.Exec in
  let module Physical = Mj_engine.Physical in
  (* Example 1's S1: the 70-tuple intermediate never materializes. *)
  let db = Scenarios.example1 in
  let s = List.assoc "S1" Scenarios.example1_strategies in
  let _, pstats = Exec.execute_pipelined db s in
  let _, mstats = Exec.execute db (Physical.of_strategy s) in
  Printf.printf
    "  Example 1 S1: stage outputs %s, pipeline peak buffer %d,\n\
    \  materializing peak %d\n"
    (String.concat "+" (List.map string_of_int pstats.Exec.emitted_per_stage))
    pstats.Exec.peak_buffer mstats.Exec.max_materialized;
  check "pipeline peak = largest base relation (7)"
    (pstats.Exec.peak_buffer = 7);
  check "materializing engine must hold the 490-tuple result"
    (mstats.Exec.max_materialized >= 490);
  check "both count tau tuples generated"
    (List.fold_left ( + ) 0 pstats.Exec.emitted_per_stage
     = mstats.Exec.tuples_generated
    && mstats.Exec.tuples_generated = Cost.tau db s);
  (* Generated chains: the gap grows with the intermediate blowup. *)
  Printf.printf "  %-10s %-18s %-18s\n" "chain n" "pipeline peak"
    "materializing peak";
  List.iter
    (fun n ->
      let rng = Random.State.make [| n; 12 |] in
      let db =
        Dbgen.skewed_db ~rng ~rows:12 ~domain:4 ~skew:1.0 (Querygraph.chain n)
      in
      let order = Scheme.Set.elements (Database.schemes db) in
      let s = Strategy.left_deep order in
      let _, p = Exec.execute_pipelined db s in
      let _, m = Exec.execute db (Physical.of_strategy s) in
      Printf.printf "  %-10d %-18d %-18d\n" n p.Exec.peak_buffer
        m.Exec.max_materialized)
    [ 3; 4; 5 ]

(* ------------------------------------------------------------------ *)
(* LEM: the lemmas and Theorem 2's proof, executed                      *)
(* ------------------------------------------------------------------ *)

let lem () =
  section "LEM" "Lemmas 1-4 and Theorem 2's construction, run as code";
  (* Lemma 1 on Example 1 (which satisfies C1). *)
  check "Lemma 1 extension holds on Example 1 (C1 database)"
    (Lemmas.lemma1_holds Scenarios.example1);
  (* Lemma 2's move on Example 1. *)
  let db = Scenarios.example1 in
  let s = Strategy.of_string "BC * ((AB * DE) * FG)" in
  (match Lemmas.lemma2_transform db s with
  | Some m ->
      Printf.printf
        "  Lemma 2: %s (tau %d, comp-sum %d)\n       ->  %s (tau %d, comp-sum %d)\n"
        (Strategy.to_string m.before) m.tau_before m.comp_sum_before
        (Strategy.to_string m.after) m.tau_after m.comp_sum_after;
      check "tau does not increase; component sum drops"
        (m.tau_after <= m.tau_before && m.comp_sum_after < m.comp_sum_before)
  | None -> check "lemma 2 configuration matched" false);
  (* Theorem 2 constructively, on C3-by-construction databases: start
     from the true optimum (which may use CPs on other databases), apply
     the proof's moves, land on an equally cheap CP-free strategy. *)
  let samples = 20 in
  let ok = ref 0 in
  for seed = 1 to samples do
    let rng = Random.State.make [| seed; 16 |] in
    let d = Querygraph.random ~extra_edge_prob:0.3 ~rng 5 in
    let db = Dbgen.superkey_db ~rng ~rows:5 ~domain:9 d in
    let best = Optimal.optimum_exn db in
    let normalized = Lemmas.to_cp_free db best.Optimal.strategy in
    if
      Strategy.avoids_cartesian normalized
      && Cost.tau db normalized = best.Optimal.cost
    then incr ok
  done;
  Printf.printf
    "  Theorem 2 construction on %d superkey databases: CP-free with\n\
    \  unchanged tau in %d/%d cases\n"
    samples !ok samples;
  check "all of them" (!ok = samples);
  (* And starting from arbitrary (non-optimal) strategies, the
     construction never increases tau when C1+C2 hold. *)
  let ok2 = ref 0 in
  for seed = 1 to samples do
    let rng = Random.State.make [| seed; 17 |] in
    let d = Querygraph.random ~extra_edge_prob:0.3 ~rng 5 in
    let db = Dbgen.superkey_db ~rng ~rows:5 ~domain:9 d in
    let s0 = Enumerate.random_strategy ~rng d in
    let s1 = Lemmas.to_cp_free db s0 in
    if Strategy.avoids_cartesian s1 && Cost.tau db s1 <= Cost.tau db s0 then
      incr ok2
  done;
  Printf.printf
    "  from random starting strategies: CP-free, tau not increased in %d/%d\n"
    !ok2 samples;
  check "all of them " (!ok2 = samples)

(* ------------------------------------------------------------------ *)
(* COST: robustness of tau-optimality across cost models                *)
(* ------------------------------------------------------------------ *)

let cost_models () =
  section "COST"
    "Is the tau-optimal strategy optimal under detailed cost models too?";
  let models =
    [ Costmodel.Cout_inclusive; Costmodel.Nested_loop_io 4; Costmodel.Hash_cpu ]
  in
  Printf.printf "  %-10s %-10s" "shape" "regime";
  List.iter (fun m -> Printf.printf " %-12s" (Costmodel.name m)) models;
  print_newline ();
  let samples = 12 in
  List.iter
    (fun (shape_name, shape) ->
      List.iter
        (fun (regime_name, gen) ->
          let agree = List.map (fun m -> (m, ref 0)) models in
          for seed = 1 to samples do
            let rng =
              Random.State.make [| seed; 13; Hashtbl.hash shape_name |]
            in
            let db : Database.t = gen ~rng (shape 6) in
            let d = Database.schemes db in
            let oracle = Cost.cardinality_oracle db in
            let tau_best = Optimal.optimum_exn db in
            List.iter
              (fun (m, hits) ->
                match Costmodel.optimum ~model:m ~oracle d with
                | Some model_best ->
                    (* tau's winner is model-optimal iff its model cost
                       matches the model optimum. *)
                    if
                      Costmodel.strategy_cost m oracle tau_best.Optimal.strategy
                      = model_best.Optimal.cost
                    then incr hits
                | None -> ())
              agree
          done;
          Printf.printf "  %-10s %-10s" shape_name regime_name;
          List.iter
            (fun (_, hits) -> Printf.printf " %-12s" (Printf.sprintf "%d/%d" !hits samples))
            agree;
          print_newline ())
        [
          ("superkey", fun ~rng d -> Dbgen.superkey_db ~rng ~rows:6 ~domain:10 d);
          ("skewed", fun ~rng d -> Dbgen.skewed_db ~rng ~rows:6 ~domain:4 ~skew:1.5 d);
        ])
    [ ("chain", Querygraph.chain); ("cycle", Querygraph.cycle) ];
  print_endline
    "  (how often the tau winner stays optimal when steps also charge for\n\
    \   inputs or pages — the Section 1 robustness question quantified)"

(* ------------------------------------------------------------------ *)
(* C4JT: Section 5's alpha-acyclic C4 with join-tree connectedness      *)
(* ------------------------------------------------------------------ *)

let c4jt () =
  section "C4JT"
    "alpha-acyclic + pairwise consistent => C4 (join-tree connectedness)";
  let samples = 12 in
  List.iter
    (fun (name, shape) ->
      let holds = ref 0 in
      for seed = 1 to samples do
        let rng = Random.State.make [| seed; 14 |] in
        let db = Dbgen.consistent_acyclic_db ~rng ~rows:5 ~domain:4 (shape 5) in
        if Conditions_jt.holds_c4 db then incr holds
      done;
      Printf.printf "  %-8s consistent databases satisfying C4 (jt): %d/%d\n"
        name !holds samples;
      check (name ^ ": all of them") (!holds = samples))
    [ ("chain", Querygraph.chain); ("star", Querygraph.star) ];
  (* Without consistency the condition genuinely fails on some
     databases: dangling tuples let a join shrink below its inputs. *)
  let violating = ref 0 in
  for seed = 1 to samples do
    let rng = Random.State.make [| seed; 15 |] in
    let raw = Dbgen.uniform_db ~rng ~rows:4 ~domain:6 (Querygraph.chain 4) in
    if not (Conditions_jt.holds_c4 raw) then incr violating
  done;
  Printf.printf "  unreduced (possibly inconsistent) databases violating C4: %d/%d\n"
    !violating samples;
  check "consistency is doing real work (some raw database violates)"
    (!violating > 0)

(* ------------------------------------------------------------------ *)
(* CASE: the supply-chain snowflake end to end                          *)
(* ------------------------------------------------------------------ *)

let case () =
  section "CASE" "Supply-chain snowflake: FK joins in a realistic shape";
  let db = Scenarios.supply_chain in
  let fds = Scenarios.supply_chain_fds in
  let d = Database.schemes db in
  Printf.printf "  %s\n" (Format.asprintf "%a" Database.pp_brief db);
  let summary = Conditions.summarize db in
  Printf.printf "  conditions: %s\n"
    (Format.asprintf "%a" Conditions.pp_summary summary);
  check "C2 holds (every join on the referenced key)" summary.c2;
  check "semantic certificate: no nontrivial lossy joins (chase)"
    (Semantic.no_nontrivial_lossy_joins fds d);
  check "an Osborn (superkey-step) strategy exists"
    (Extension.find_osborn_strategy fds d <> None);
  (match Extension.find_osborn_strategy fds d with
  | Some s ->
      Printf.printf "  Osborn strategy: %s (tau %d)\n" (Strategy.to_string s)
        (Cost.tau db s)
  | None -> ());
  let best = Optimal.optimum_exn db in
  let best_lcf = Optimal.optimum ~subspace:Enumerate.Linear_cp_free db in
  Printf.printf "  exact optimum: tau %d with %s\n" best.cost
    (Strategy.to_string best.strategy);
  (match best_lcf with
  | Some r -> Printf.printf "  best linear CP-free: tau %d\n" r.cost
  | None -> ());
  (* Estimates find a good plan here: FK statistics are the friendly
     case for the uniform estimator. *)
  let est = Estimate.of_catalog (Catalog.of_database db) in
  (match Dpccp.plan ~oracle:est d with
  | Some r ->
      Printf.printf "  DPccp (estimates): actual tau %d\n"
        (Cost.tau db r.Optimal.strategy)
  | None -> ());
  check "theorems never refuted"
    (let r = Theorems.verify db in
     r.theorem1 <> Theorems.Refuted
     && r.theorem2 <> Theorems.Refuted
     && r.theorem3 <> Theorems.Refuted)

(* ------------------------------------------------------------------ *)
(* LOSS: lossless strategies (Section 5's closing question)             *)
(* ------------------------------------------------------------------ *)

let loss () =
  section "LOSS" "Are lossless strategies tau-optimal? (Section 5)";
  (* Supply chain: keys declared, so lossless strategies exist. *)
  let db = Scenarios.supply_chain in
  let fds = Scenarios.supply_chain_fds in
  (match Lossless.gap_to_optimum fds db with
  | Some (best, opt) ->
      Printf.printf
        "  supply chain: best lossless tau = %d, global optimum = %d\n" best
        opt;
      check "lossless strategies reach the optimum here" (best = opt)
  | None -> check "lossless strategies exist" false);
  (* Superkey databases: every linked step is lossless, so the lossless
     optimum should coincide with the global optimum (Theorem 3's
     regime). *)
  let samples = 12 in
  let hit = ref 0 in
  for seed = 1 to samples do
    let rng = Random.State.make [| seed; 19 |] in
    let d = Querygraph.chain 4 in
    let db = Dbgen.superkey_db ~rng ~rows:5 ~domain:9 d in
    let fds =
      List.concat_map
        (fun scheme ->
          List.map
            (fun a -> Fd.fd (Mj_relation.Attr.Set.singleton a) scheme)
            (Mj_relation.Attr.Set.elements scheme))
        (Scheme.Set.elements d)
    in
    match Lossless.gap_to_optimum fds db with
    | Some (best, opt) when best = opt -> incr hit
    | _ -> ()
  done;
  Printf.printf
    "  superkey chains where the lossless optimum = global optimum: %d/%d\n"
    !hit samples;
  check "all of them" (!hit = samples);
  (* Without dependencies, no step can be proven lossless. *)
  check "no FDs: no lossless strategy"
    (Lossless.best_lossless [] Scenarios.example4 = None)

(* ------------------------------------------------------------------ *)
(* MAKESPAN: makespan under parallel evaluation (refs [9], [16])        *)
(* ------------------------------------------------------------------ *)

let makespan () =
  section "MAKESPAN"
    "Total work (tau) vs critical path (makespan) under parallelism";
  let module Parallel = Mj_engine.Parallel in
  Printf.printf "  %-8s %-10s %-24s %-24s\n" "shape" "regime"
    "linear-opt: tau/makespan" "makespan-opt: tau/makespan";
  let samples = 12 in
  List.iter
    (fun (shape_name, shape) ->
      List.iter
        (fun (regime_name, gen) ->
          let acc = Array.make 4 0 in
          for seed = 1 to samples do
            let rng =
              Random.State.make [| seed; 18; Hashtbl.hash shape_name |]
            in
            let db : Database.t = gen ~rng (shape 6) in
            let d = Database.schemes db in
            let oracle = Cost.cardinality_oracle db in
            let linear_opt =
              Option.get
                (Optimal.optimum_with_oracle ~subspace:Enumerate.Linear ~oracle d)
            in
            let mk_opt =
              Option.get (Parallel.optimum_makespan ~oracle d)
            in
            acc.(0) <- acc.(0) + linear_opt.Optimal.cost;
            acc.(1) <- acc.(1) + Parallel.makespan_oracle oracle linear_opt.Optimal.strategy;
            acc.(2) <- acc.(2) + Cost.tau_oracle oracle mk_opt.Optimal.strategy;
            acc.(3) <- acc.(3) + mk_opt.Optimal.cost
          done;
          Printf.printf "  %-8s %-10s %-24s %-24s\n" shape_name regime_name
            (Printf.sprintf "%d / %d" (acc.(0) / samples) (acc.(1) / samples))
            (Printf.sprintf "%d / %d" (acc.(2) / samples) (acc.(3) / samples)))
        [
          ("superkey", fun ~rng d -> Dbgen.superkey_db ~rng ~rows:6 ~domain:10 d);
          ( "skewed",
            fun ~rng d -> Dbgen.skewed_db ~rng ~rows:6 ~domain:4 ~skew:1.5 d );
        ])
    [ ("chain", Querygraph.chain); ("star", Querygraph.star) ];
  print_endline
    "  (columns: mean total work / mean critical path.  A linear strategy's\n\
    \   makespan IS its tau — no two steps can overlap — so even under C3,\n\
    \   where Theorem 3 makes a linear strategy tau-optimal, a bushy tree\n\
    \   can finish earlier on a parallel machine: the [16]/GAMMA trade-off\n\
    \   the paper's technology-neutral cost measure deliberately leaves out)"

(* ------------------------------------------------------------------ *)
(* OBS: optimizer search-effort counters (Mj_obs)                       *)
(* ------------------------------------------------------------------ *)

let obs_metrics () =
  section "OBS"
    "Optimizer search effort via Mj_obs (pairs / entries / pruned / estimates)";
  let module Obs = Mj_obs.Obs in
  let module Json = Mj_obs.Json in
  let queries =
    [
      ("chain10", Querygraph.chain 10);
      ("star10", Querygraph.star 10);
      ("clique8", Querygraph.clique 8);
    ]
  in
  let algorithms =
    [
      ("dpsize", fun ~obs ~oracle d -> ignore (Dpsize.plan ~obs ~oracle d));
      ("dpsub", fun ~obs ~oracle d -> ignore (Dpsub.plan ~obs ~oracle d));
      ("dpccp", fun ~obs ~oracle d -> ignore (Dpccp.plan ~obs ~oracle d));
      ( "selinger",
        fun ~obs ~oracle d -> ignore (Selinger.plan ~obs ~cp:`Never ~oracle d) );
      ("goo", fun ~obs ~oracle d -> ignore (Greedy.goo ~obs ~oracle d));
    ]
  in
  Printf.printf "  %-10s %-10s %-10s %-10s %-10s %-10s\n" "query" "algorithm"
    "pairs" "entries" "pruned" "estimates";
  let blob = ref [] in
  List.iter
    (fun (qname, d) ->
      let cat =
        Catalog.synthetic
          (List.map (fun s -> (s, 64, [])) (Scheme.Set.elements d))
      in
      let oracle = Estimate.of_catalog cat in
      List.iter
        (fun (aname, run) ->
          (* One sink per (query, algorithm) so counters do not mix. *)
          let obs = Obs.make () in
          run ~obs ~oracle d;
          let v name =
            match List.assoc_opt name (Obs.counters obs) with
            | Some n -> n
            | None -> 0
          in
          Printf.printf "  %-10s %-10s %-10d %-10d %-10d %-10d\n" qname aname
            (v "opt.pairs_inspected") (v "opt.dp_entries")
            (v "opt.plans_pruned") (v "opt.estimate_calls");
          blob :=
            Json.Obj
              (("query", Json.str qname) :: ("algorithm", Json.str aname)
              :: List.map (fun (k, n) -> (k, Json.int n)) (Obs.counters obs))
            :: !blob)
        algorithms)
    queries;
  (* A machine-readable line for downstream tooling: scrape stdout for
     the BENCH_JSON prefix and parse the remainder. *)
  Printf.printf "  BENCH_JSON %s\n"
    (Json.to_string (Json.Obj [ ("optimizer_search", Json.Arr (List.rev !blob)) ]));
  check "dpccp pairs on chain10 = closed-form csg-cmp count"
    (let obs = Obs.make () in
     let d = Querygraph.chain 10 in
     let cat =
       Catalog.synthetic
         (List.map (fun s -> (s, 64, [])) (Scheme.Set.elements d))
     in
     ignore (Dpccp.plan ~obs ~oracle:(Estimate.of_catalog cat) d);
     List.assoc_opt "opt.pairs_inspected" (Obs.counters obs)
     = Some (Dpccp.count_csg_cmp_pairs d))

(* ------------------------------------------------------------------ *)
(* KERNEL: bitmask subset kernel vs the legacy path                     *)
(* ------------------------------------------------------------------ *)

let kernel () =
  section "KERNEL"
    "Bitmask subset kernel vs preserved legacy path (same oracle, equal \
     results)";
  let t = Kernel_bench.run ~domains:(config_domains ()) ~quick:!quick () in
  Printf.printf "  domains: %d%s\n" t.domains
    (if !quick then " (quick grid)" else "");
  Printf.printf "  %-12s %-7s %-4s %-5s %-12s %-12s %-9s %-6s\n" "workload"
    "shape" "n" "reps" "legacy ms" "kernel ms" "speedup" "equal";
  List.iter
    (fun (r : Kernel_bench.row) ->
      Printf.printf "  %-12s %-7s %-4d %-5d %-12.3f %-12.3f %-9s %s\n"
        r.experiment r.shape r.n r.reps r.legacy_ms r.kernel_ms
        (Printf.sprintf "%.1fx" r.speedup)
        (if r.equal then "OK" else "FAIL"))
    t.rows;
  Printf.printf
    "  shared tau-oracle cache (Theorems.verify, uniform chain5): %d hits, %d \
     misses\n"
    t.cache_hits t.cache_misses;
  check "legacy and kernel paths agree on every row"
    (List.for_all (fun (r : Kernel_bench.row) -> r.equal) t.rows);
  Printf.printf "  BENCH_JSON %s\n"
    (Mj_obs.Json.to_string (Kernel_bench.bench_json t));
  Kernel_bench.write_file "BENCH_KERNEL.json" t;
  print_endline "  (full report written to BENCH_KERNEL.json)"

(* ------------------------------------------------------------------ *)
(* FRAME: columnar data plane vs the seed tuple path                     *)
(* ------------------------------------------------------------------ *)

let frame () =
  section "FRAME"
    "Columnar dictionary-encoded frames vs seed Relation/Exec data plane \
     (equal results certified)";
  let t = Frame_bench.run ~domains:(config_domains ()) ~quick:!quick () in
  Printf.printf "  domains: %d (on %d core%s), dict: %d values%s\n" t.domains
    t.cores
    (if t.cores = 1 then "" else "s")
    t.dict_size
    (if !quick then " (quick grid)" else "");
  Printf.printf "  %-12s %-9s %-7s %-5s %-12s %-12s %-9s %-6s\n" "workload"
    "shape" "n" "reps" "seed ms" "frame ms" "speedup" "equal";
  List.iter
    (fun (r : Frame_bench.row) ->
      Printf.printf "  %-12s %-9s %-7d %-5d %-12.3f %-12.3f %-9s %s\n"
        r.experiment r.shape r.n r.reps r.seed_ms r.frame_ms
        (Printf.sprintf "%.1fx" r.speedup)
        (if r.equal then "OK" else "FAIL"))
    t.rows;
  check "seed and frame data planes agree on every row"
    (List.for_all (fun (r : Frame_bench.row) -> r.equal) t.rows);
  let floor_fails = Frame_bench.floor_failures t in
  check "every row with a speedup floor meets it" (floor_fails = []);
  Printf.printf "  BENCH_JSON %s\n"
    (Mj_obs.Json.to_string (Frame_bench.bench_json t));
  Frame_bench.write_file "BENCH_FRAME.json" t;
  print_endline "  (full report written to BENCH_FRAME.json)";
  print_endline
    "  (join-morsel compares the columnar join at 1 domain vs the pool's\n\
    \   domain count and certifies bit-identical frames; wall-clock gains\n\
    \   need >1 physical core.  tau-gamma/tau-thm certify bit-identical\n\
    \   tau tables)";
  if floor_fails <> [] then begin
    List.iter
      (fun (r : Frame_bench.row) ->
        Printf.printf "  FLOOR FAIL %s %s n=%d: %.2fx < required %.2fx\n"
          r.experiment r.shape r.n r.speedup
          (Option.value r.speedup_floor ~default:0.0))
      floor_fails;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* PAR: morsel-join scaling over storage x domains                      *)
(* ------------------------------------------------------------------ *)

let par () =
  section "PAR"
    "Morsel-driven join scaling: 1/2/4/8 domains, heap vs bigarray storage \
     (bit-identical results certified)";
  let t = Par_bench.run ~quick:!quick () in
  Printf.printf "  cores: %d, morsel: %d rows, pool clamp events: %d%s\n"
    t.cores t.morsel t.clamp_events
    (if !quick then " (quick grid)" else "");
  if t.clamp_events > 0 then
    Printf.printf
      "  (pool clamped %d multi-domain run(s) to the core count; scaling\n\
      \   numbers above 1 domain are not meaningful on this machine)\n"
      t.clamp_events;
  Printf.printf "  %-9s %-8s %-7s %-7s %-5s %-12s %-12s %-9s %-8s %-6s\n"
    "storage" "domains" "shape" "n" "reps" "1-dom ms" "par ms" "speedup"
    "clamped" "equal";
  List.iter
    (fun (r : Par_bench.row) ->
      Printf.printf "  %-9s %-8d %-7s %-7d %-5d %-12.3f %-12.3f %-9s %-8s %s\n"
        (Mj_relation.Frame.storage_name r.storage)
        r.domains r.shape r.n r.reps r.base_ms r.par_ms
        (* a clamped cell timed oversubscription, not scaling *)
        (if r.clamped then "-" else Printf.sprintf "%.2fx" r.speedup)
        (if r.clamped then "yes" else "no")
        (if r.equal then "OK" else "FAIL"))
    t.rows;
  let unclamped =
    List.filter (fun (r : Par_bench.row) -> not r.clamped) t.rows
  in
  check "every unclamped cell reports a positive speedup"
    (List.for_all (fun (r : Par_bench.row) -> r.speedup > 0.0) unclamped);
  check "every cell is bit-identical to the 1-domain heap reference"
    (List.for_all (fun (r : Par_bench.row) -> r.equal) t.rows);
  Printf.printf "  BENCH_JSON %s\n"
    (Mj_obs.Json.to_string (Par_bench.bench_json t));
  Par_bench.write_file "BENCH_PAR.json" t;
  print_endline "  (full report written to BENCH_PAR.json)";
  if not (List.for_all (fun (r : Par_bench.row) -> r.equal) t.rows) then exit 1

(* ------------------------------------------------------------------ *)
(* WCOJ: generic join vs best binary plan on cyclic skewed workloads    *)
(* ------------------------------------------------------------------ *)

let wcoj () =
  section "WCOJ"
    "Worst-case-optimal generic join vs the best binary plan on cyclic \
     zipf-skewed workloads (bit-identical results, AGM-priced)";
  let t = Wcoj_bench.run ~quick:!quick () in
  Printf.printf "  cores: %d%s\n" t.cores (if !quick then " (quick grid)" else "");
  Printf.printf "  %-9s %-8s %-7s %-5s %-11s %-11s %-8s %-10s %-9s %-11s %-7s %-6s\n"
    "shape" "n" "domain" "skew" "binary ms" "wcoj ms" "speedup" "tau-bin"
    "tau-wcoj" "agm-bound" "floor" "equal";
  List.iter
    (fun (r : Wcoj_bench.row) ->
      Printf.printf
        "  %-9s %-8d %-7d %-5.2f %-11.3f %-11.3f %-8s %-10d %-9d %-11s %-7s %s\n"
        r.shape r.n r.domain r.skew r.binary_ms r.wcoj_ms
        (Printf.sprintf "%.2fx" r.speedup)
        r.tau_binary r.tau_wcoj
        (match r.agm_bound with
        | Some b -> Printf.sprintf "%.3g" b
        | None -> "-")
        (match r.speedup_floor with
        | Some f -> Printf.sprintf "%.1fx" f
        | None -> "-")
        (if r.equal then "OK" else "FAIL"))
    t.rows;
  check "generic join is bit-identical to the binary plan on every row"
    (List.for_all (fun (r : Wcoj_bench.row) -> r.equal) t.rows);
  check "the generic join materializes no binary intermediate (tau = output)"
    (List.for_all
       (fun (r : Wcoj_bench.row) -> r.tau_wcoj = r.rows_out)
       t.rows);
  check "every floored row meets its speedup floor"
    (List.for_all Wcoj_bench.floor_ok t.rows);
  Printf.printf "  BENCH_JSON %s\n"
    (Mj_obs.Json.to_string (Wcoj_bench.bench_json t));
  Wcoj_bench.write_file "BENCH_WCOJ.json" t;
  print_endline "  (full report written to BENCH_WCOJ.json)";
  if Wcoj_bench.failures t <> [] then exit 1

(* ------------------------------------------------------------------ *)
(* SERVE: the mjoin serve daemon under concurrent load                  *)
(* ------------------------------------------------------------------ *)

let serve () =
  section "SERVE"
    "mjoin serve under concurrent mixed load (every response certified \
     against a cold Engine.run; plan-cache warm-over-cold gated)";
  let t = Serve_bench.run ~quick:!quick () in
  Printf.printf "  cores: %d%s\n" t.cores
    (if !quick then " (quick grid)" else "");
  let opt fmt = function Some v -> Printf.sprintf fmt v | None -> "-" in
  Printf.printf
    "  %-10s %-8s %-9s %-9s %-9s %-9s %-9s %-4s %-5s %-4s %-6s %-5s\n"
    "workload" "clients" "requests" "p50 ms" "p95 ms" "p99 ms" "qps" "ok"
    "shed" "err" "hits" "cert";
  List.iter
    (fun (r : Serve_bench.row) ->
      Printf.printf
        "  %-10s %-8d %-9d %-9s %-9s %-9s %-9s %-4d %-5d %-4d %-6d %s\n"
        r.workload r.clients r.requests (opt "%.3f" r.p50_ms)
        (opt "%.3f" r.p95_ms) (opt "%.3f" r.p99_ms) (opt "%.0f" r.qps) r.ok
        r.overloaded r.errors r.cache_hits
        (if r.certified then "OK" else "FAIL"))
    t.rows;
  List.iter
    (fun (r : Serve_bench.row) ->
      match (r.cold_ms, r.warm_ms, r.speedup) with
      | Some cold, Some warm, Some s ->
          Printf.printf
            "  plan-cache gate: cold %.3f ms, warm %.3f ms, speedup %.2fx \
             (floor %s)\n"
            cold warm s
            (opt "%.1fx" r.speedup_floor)
      | _ -> ())
    t.rows;
  check "every served response is bit-identical to a cold Engine.run"
    (List.for_all (fun (r : Serve_bench.row) -> r.certified) t.rows);
  check "the warm plan-cache row meets its speedup floor"
    (List.for_all Serve_bench.floor_ok t.rows);
  Printf.printf "  BENCH_JSON %s\n"
    (Mj_obs.Json.to_string (Serve_bench.bench_json t));
  Serve_bench.write_file "BENCH_SERVE.json" t;
  print_endline "  (full report written to BENCH_SERVE.json)";
  if Serve_bench.failures t <> [] then exit 1

(* ------------------------------------------------------------------ *)
(* PLAN: default-hash vs cost-based lowering                            *)
(* ------------------------------------------------------------------ *)

let plan () =
  section "PLAN"
    "Baseline vs cost-based lowering of one strategy (equal results, equal \
     tau certified)";
  let cfg = get_config () in
  let t =
    Plan_bench.run ~baseline:cfg.Engine.Config.algo_policy
      ~domains:cfg.Engine.Config.domains ~quick:!quick ()
  in
  Printf.printf "  baseline lowering: %s\n" t.baseline;
  Printf.printf "  %-16s %-7s %-5s %-10s %-10s %-8s %-24s %-6s\n" "workload"
    "rows" "reps" "base ms" "cost ms" "speedup" "cost-based algorithms" "equal";
  List.iter
    (fun (r : Plan_bench.row) ->
      Printf.printf "  %-16s %-7d %-5d %-10.3f %-10.3f %-8s %-24s %s\n"
        r.workload r.rows_per_rel r.reps r.base_ms r.cost_ms
        (Printf.sprintf "%.1fx" r.speedup)
        r.cost_algos
        (if r.equal then "OK" else "FAIL"))
    t.rows;
  Printf.printf "  %-16s %-14s %-14s %-12s %-12s %-8s\n" "workload"
    "base cmps" "cost cmps" "base probes" "cost probes" "tau";
  List.iter
    (fun (r : Plan_bench.row) ->
      Printf.printf "  %-16s %-14d %-14d %-12d %-12d %-8d\n" r.workload
        r.base_comparisons r.cost_comparisons r.base_probes r.cost_probes r.tau)
    t.rows;
  check "both lowerings agree on every row (results and tau)"
    (List.for_all (fun (r : Plan_bench.row) -> r.equal) t.rows);
  Printf.printf "  BENCH_JSON %s\n"
    (Mj_obs.Json.to_string (Plan_bench.bench_json t));
  Plan_bench.write_file "BENCH_PLAN.json" t;
  print_endline "  (full report written to BENCH_PLAN.json)";
  print_endline
    "  (tau is identical by construction — the paper's measure counts\n\
    \   tuples generated, not work per tuple, so the chooser can only move\n\
    \   wall-clock and the comparison/probe mix, never the answer)"

(* ------------------------------------------------------------------ *)
(* PERF: optimizer timings (bechamel)                                   *)
(* ------------------------------------------------------------------ *)

let perf () =
  section "PERF" "Optimizer timings (bechamel, OLS ns per optimization)";
  let open Bechamel in
  let cases =
    let mk name f = Test.make ~name (Staged.stage f) in
    let chain10 = Querygraph.chain 10 in
    let clique10 = Querygraph.clique 10 in
    let chain60 = Querygraph.chain 60 in
    let cat10 =
      Catalog.synthetic
        (List.map (fun s -> (s, 64, [])) (Scheme.Set.elements chain10))
    in
    let catc10 =
      Catalog.synthetic
        (List.map (fun s -> (s, 64, [])) (Scheme.Set.elements clique10))
    in
    let est10 = Estimate.of_catalog cat10 in
    let estc10 = Estimate.of_catalog catc10 in
    let est60 =
      Estimate.graph_model
        ~card:(fun _ -> 64.0)
        ~selectivity:(fun _ _ -> 1.0 /. 64.0)
        chain60
    in
    let card60 _ = 64.0 in
    let sel60 _ _ = 1.0 /. 64.0 in
    [
      mk "dpccp-chain10" (fun () -> ignore (Dpccp.plan ~oracle:est10 chain10));
      mk "dpsize-chain10" (fun () ->
          ignore (Dpsize.plan ~allow_cp:false ~oracle:est10 chain10));
      mk "dpsub-chain10" (fun () ->
          ignore (Dpsub.plan ~allow_cp:false ~oracle:est10 chain10));
      mk "selinger-chain10" (fun () ->
          ignore (Selinger.plan ~cp:`Never ~oracle:est10 chain10));
      mk "dpccp-clique10" (fun () -> ignore (Dpccp.plan ~oracle:estc10 clique10));
      mk "dpsize-clique10" (fun () ->
          ignore (Dpsize.plan ~allow_cp:false ~oracle:estc10 clique10));
      mk "ikkbz-chain60" (fun () ->
          ignore (Ikkbz.order ~card:card60 ~selectivity:sel60 chain60));
      mk "goo-chain60" (fun () -> ignore (Greedy.goo ~oracle:est60 chain60));
    ]
  in
  let test = Test.make_grouped ~name:"optimizers" ~fmt:"%s %s" cases in
  let results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:None () in
    let raw = Benchmark.all cfg instances test in
    Analyze.all ols Toolkit.Instance.monotonic_clock raw
  in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some (t :: _) -> Printf.printf "  %-30s %14.0f ns/run\n" name t
      | _ -> Printf.printf "  %-30s (no estimate)\n" name)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("EX1", ex1); ("EX2", ex2); ("EX3", ex3); ("EX4", ex4); ("EX5", ex5);
    ("FIG", fig);
    ("THM1", fun () -> theorem_experiment "THM1" 1);
    ("THM2", fun () -> theorem_experiment "THM2" 2);
    ("THM3", fun () -> theorem_experiment "THM3" 3);
    ("SK", sk); ("SPACE", space); ("GAMMA", gamma); ("MONO", mono);
    ("SETOP", setop); ("YANN", yann); ("EST", est); ("RAND", rand);
    ("PIPE", pipe); ("LEM", lem); ("COST", cost_models); ("C4JT", c4jt); ("CASE", case); ("MAKESPAN", makespan); ("LOSS", loss);
    ("OBS", obs_metrics); ("KERNEL", kernel); ("FRAME", frame); ("PAR", par); ("WCOJ", wcoj); ("SERVE", serve); ("PLAN", plan);
    ("PERF", perf);
  ]

let () =
  let engine = ref None and domains = ref None and policy = ref None in
  let rec parse = function
    | [] -> []
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | [ (("--engine" | "--domains" | "--policy") as flag) ] ->
        Printf.eprintf "%s expects a value\n" flag;
        exit 2
    | "--engine" :: v :: rest ->
        (match Engine.plane_of_string v with
        | Some p -> engine := Some p
        | None ->
            Printf.eprintf "unknown engine %s (expected seed or frame)\n" v;
            exit 2);
        parse rest
    | "--domains" :: v :: rest ->
        (match int_of_string_opt (String.trim v) with
        | Some d -> domains := Some (max 1 d)
        | None ->
            Printf.eprintf "--domains expects an integer, got %s\n" v;
            exit 2);
        parse rest
    | "--policy" :: v :: rest ->
        (match Mj_engine.Planner.policy_of_string v with
        | Some p -> policy := Some p
        | None ->
            Printf.eprintf
              "unknown policy %s (expected hash, cost, wcoj or yann)\n" v;
            exit 2);
        parse rest
    | a :: rest -> a :: parse rest
  in
  let args = parse (List.tl (Array.to_list Sys.argv)) in
  (* CLI > env > default: flag values are registered before the config
     forces its (memoized, first-set-wins) environment read, so every
     default-using path — the pool's worker count, [Cost.Cache]'s
     τ-oracle backend in THM/GAMMA/CASE — observes the flags. *)
  (match !engine with
  | Some p -> Cost.Cache.set_env_backend (Engine.backend_of_plane p)
  | None -> ());
  (match !domains with Some d -> Pool.set_env_domains d | None -> ());
  config :=
    Some (Engine.Config.make ?plane:!engine ?domains:!domains ?policy:!policy ());
  let requested =
    match args with [] -> List.map fst experiments | ids -> ids
  in
  List.iter
    (fun id ->
      match List.assoc_opt id experiments with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %s (known: %s)\n" id
            (String.concat " " (List.map fst experiments));
          exit 2)
    requested
